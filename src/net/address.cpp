#include "net/address.hpp"

#include <cstdio>
#include <stdexcept>

namespace hipcloud::net {

Ipv4Addr Ipv4Addr::parse(std::string_view text) {
  unsigned a, b, c, d;
  char extra;
  const std::string s(text);
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("Ipv4Addr: bad address '" + s + "'");
  }
  return Ipv4Addr(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                  static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", value_ >> 24,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

Ipv6Addr Ipv6Addr::from_bytes(crypto::BytesView data) {
  if (data.size() != 16) {
    throw std::invalid_argument("Ipv6Addr: need 16 bytes");
  }
  std::array<std::uint8_t, 16> bytes;
  std::copy(data.begin(), data.end(), bytes.begin());
  return Ipv6Addr(bytes);
}

Ipv6Addr Ipv6Addr::parse(std::string_view text) {
  // Supports the canonical "h:h:...:h" form with at most one "::".
  std::array<std::uint16_t, 8> groups{};
  const std::string s(text);
  const auto dc = s.find("::");
  auto parse_groups = [](const std::string& part,
                         std::vector<std::uint16_t>& out) {
    if (part.empty()) return;
    std::size_t pos = 0;
    while (pos <= part.size()) {
      const auto colon = part.find(':', pos);
      const std::string tok =
          part.substr(pos, colon == std::string::npos ? colon : colon - pos);
      if (tok.empty() || tok.size() > 4) {
        throw std::invalid_argument("Ipv6Addr: bad group '" + tok + "'");
      }
      out.push_back(
          static_cast<std::uint16_t>(std::stoul(tok, nullptr, 16)));
      if (colon == std::string::npos) break;
      pos = colon + 1;
    }
  };
  std::vector<std::uint16_t> head, tail;
  if (dc == std::string::npos) {
    parse_groups(s, head);
    if (head.size() != 8) {
      throw std::invalid_argument("Ipv6Addr: need 8 groups");
    }
  } else {
    parse_groups(s.substr(0, dc), head);
    parse_groups(s.substr(dc + 2), tail);
    if (head.size() + tail.size() > 7) {
      throw std::invalid_argument("Ipv6Addr: too many groups with ::");
    }
  }
  for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i) {
    groups[8 - tail.size() + i] = tail[i];
  }
  std::array<std::uint8_t, 16> bytes;
  for (int i = 0; i < 8; ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(groups[i]);
  }
  return Ipv6Addr(bytes);
}

std::string Ipv6Addr::to_string() const {
  // Canonical-ish: compress the longest zero run (RFC 5952 without
  // lower-casing subtleties — groups are already lowercase hex).
  std::array<std::uint16_t, 8> groups;
  for (int i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>((bytes_[2 * i] << 8) |
                                           bytes_[2 * i + 1]);
  }
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] == 0) {
      int j = i;
      while (j < 8 && groups[j] == 0) ++j;
      if (j - i > best_len) {
        best_len = j - i;
        best_start = i;
      }
      i = j;
    } else {
      ++i;
    }
  }
  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start && best_len >= 2) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof(buf), "%x", groups[i]);
    out += buf;
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

std::string IpAddr::to_string() const {
  return is_v4() ? v4().to_string() : v6().to_string();
}

std::string Endpoint::to_string() const {
  if (addr.is_v6()) return "[" + addr.to_string() + "]:" + std::to_string(port);
  return addr.to_string() + ":" + std::to_string(port);
}

}  // namespace hipcloud::net
