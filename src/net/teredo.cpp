#include "net/teredo.hpp"

#include <stdexcept>

#include "net/wire_reader.hpp"
#include "sim/log.hpp"

namespace hipcloud::net {

using crypto::Bytes;
using crypto::BytesView;

namespace {
// One-byte message tags on UDP 3544.
constexpr std::uint8_t kMsgSolicit = 0x01;
constexpr std::uint8_t kMsgAdvert = 0x02;
constexpr std::uint8_t kMsgData = 0x03;
}  // namespace

Ipv6Addr make_teredo_address(Ipv4Addr server, Ipv4Addr mapped_addr,
                             std::uint16_t mapped_port) {
  std::array<std::uint8_t, 16> b{};
  b[0] = 0x20;
  b[1] = 0x01;
  b[2] = 0x00;
  b[3] = 0x00;
  const std::uint32_t sv = server.value();
  b[4] = static_cast<std::uint8_t>(sv >> 24);
  b[5] = static_cast<std::uint8_t>(sv >> 16);
  b[6] = static_cast<std::uint8_t>(sv >> 8);
  b[7] = static_cast<std::uint8_t>(sv);
  b[8] = 0x80;  // flags: cone NAT
  b[9] = 0x00;
  // Obfuscated (inverted) mapped port and address.
  const std::uint16_t oport = static_cast<std::uint16_t>(~mapped_port);
  b[10] = static_cast<std::uint8_t>(oport >> 8);
  b[11] = static_cast<std::uint8_t>(oport);
  const std::uint32_t oaddr = ~mapped_addr.value();
  b[12] = static_cast<std::uint8_t>(oaddr >> 24);
  b[13] = static_cast<std::uint8_t>(oaddr >> 16);
  b[14] = static_cast<std::uint8_t>(oaddr >> 8);
  b[15] = static_cast<std::uint8_t>(oaddr);
  return Ipv6Addr(b);
}

Endpoint teredo_mapped_endpoint(const Ipv6Addr& addr) {
  if (!addr.is_teredo()) {
    throw std::invalid_argument("teredo_mapped_endpoint: not a Teredo address");
  }
  const auto& b = addr.bytes();
  const std::uint16_t port = static_cast<std::uint16_t>(
      ~((std::uint16_t(b[10]) << 8) | b[11]));
  const std::uint32_t ip = ~((std::uint32_t(b[12]) << 24) |
                             (std::uint32_t(b[13]) << 16) |
                             (std::uint32_t(b[14]) << 8) | b[15]);
  return Endpoint{IpAddr(Ipv4Addr(ip)), port};
}

// ---------------------------------------------------------------------------
// TeredoServer

TeredoServer::TeredoServer(Node* node, UdpStack* udp)
    : node_(node), udp_(udp) {
  udp_->bind(kTeredoPort, [this](const Endpoint& from, const IpAddr& local,
                                 crypto::Buffer data) {
    on_datagram(from, local, std::move(data));
  });
}

// hipcheck:wire_input
void TeredoServer::on_datagram(const Endpoint& from, const IpAddr& /*local*/,
                               crypto::Buffer data) {
  wire::Reader r(data.view());
  const auto tag = r.u8();
  if (!tag) return;
  if (*tag == kMsgSolicit) {
    // Router advertisement: tell the client its observed endpoint.
    Bytes reply{kMsgAdvert};
    crypto::append_be(reply, from.addr.v4().value(), 4);
    crypto::append_be(reply, from.port, 2);
    udp_->send(kTeredoPort, from, std::move(reply));
    return;
  }
  if (*tag == kMsgData) {
    // Relay: peek the inner IPv6 destination straight out of the datagram
    // (the 40-byte v6 header right after the tag) and forward the whole
    // buffer untouched — the relay never copies the tunnelled packet.
    const auto hdr = r.bytes(40);
    if (!hdr || ((*hdr)[0] >> 4) != 6) return;
    const IpAddr dst(Ipv6Addr::from_bytes(hdr->subspan(24, 16)));
    if (!dst.is_teredo()) {
      HIPCLOUD_LOG(sim::LogLevel::kDebug, node_->network().loop().now(),
                    "teredo", "relay: non-Teredo destination " +
                                  dst.to_string() + ", dropping");
      return;
    }
    const Endpoint mapped = teredo_mapped_endpoint(dst.v6());
    udp_->send(kTeredoPort, mapped, std::move(data));
  }
}

// ---------------------------------------------------------------------------
// TeredoClient

/// L3 shim that captures IPv6 traffic towards Teredo space.
class TeredoClient::Shim : public L3Shim {
 public:
  explicit Shim(TeredoClient* client) : client_(client) {}

  bool outbound(Packet& pkt) override {
    if (!pkt.dst.is_teredo()) return false;
    if (!client_->qualified_) {
      HIPCLOUD_LOG(sim::LogLevel::kWarn,
                    client_->node_->network().loop().now(), "teredo",
                    client_->node_->name() +
                        ": Teredo destination but not qualified; dropping");
      return true;
    }
    client_->send_tunnelled(std::move(pkt));
    return true;
  }

  bool inbound(Packet&) override { return false; }  // arrives via UDP instead

  std::size_t path_overhead(const IpAddr& dst) const override {
    return dst.is_teredo() ? TeredoClient::kTunnelOverhead : 0;
  }

 private:
  TeredoClient* client_;
};

TeredoClient::TeredoClient(Node* node, UdpStack* udp, Endpoint server)
    : node_(node), udp_(udp), server_(std::move(server)) {
  local_port_ = udp_->bind(0, [this](const Endpoint& from, const IpAddr& local,
                                     crypto::Buffer data) {
    on_datagram(from, local, std::move(data));
  });
  node_->add_shim(std::make_shared<Shim>(this));
}

void TeredoClient::qualify(QualifiedFn done) {
  pending_done_ = std::move(done);
  udp_->send(local_port_, server_, Bytes{kMsgSolicit});
}

// hipcheck:hot
// hipcheck:wire_input
void TeredoClient::on_datagram(const Endpoint& /*from*/,
                               const IpAddr& /*local*/, crypto::Buffer data) {
  wire::Reader r(data.view());
  const auto tag = r.u8();
  if (!tag) return;
  if (*tag == kMsgAdvert) {
    const auto raw_ip = r.u32be();
    const auto raw_port = r.u16be();
    if (!raw_ip || !raw_port) return;
    const auto mapped_ip = Ipv4Addr(*raw_ip);
    const auto mapped_port = static_cast<std::uint16_t>(*raw_port);
    address_ = make_teredo_address(server_.addr.v4(), mapped_ip, mapped_port);
    if (!qualified_) {
      const std::size_t iface = node_->add_virtual_interface();
      node_->add_address(iface, address_);
      qualified_ = true;
    }
    if (pending_done_) {
      auto done = std::move(pending_done_);
      pending_done_ = nullptr;
      done(address_);
    }
    return;
  }
  if (*tag == kMsgData) {
    Packet inner;
    try {
      data.pop_front(1);
      inner = parse_ipv6_in_place(std::move(data));
    } catch (const std::runtime_error&) {
      return;
    }
    // Outer encapsulation already charged on the wire; re-inject the
    // inner packet into our own stack.
    node_->deliver(std::move(inner), 0);
  }
}

// hipcheck:hot
void TeredoClient::send_tunnelled(Packet&& pkt) {
  // Ensure the inner packet carries our Teredo source.
  if (!pkt.src.is_teredo()) pkt.src = address_;
  // Build the v6 header and the tag in the payload buffer's headroom —
  // the tunnelled packet is never copied.
  crypto::Buffer wire = serialize_ipv6_in_place(std::move(pkt));
  *wire.prepend(1) = kMsgData;
  // All traffic goes via the server/relay — the conservative Teredo path,
  // and the one that reproduces the latency penalty the paper measured.
  udp_->send(local_port_, server_, std::move(wire));
}

}  // namespace hipcloud::net
