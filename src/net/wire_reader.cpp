#include "net/wire_reader.hpp"

namespace hipcloud::wire {

std::optional<std::uint8_t> Reader::u8() {
  if (!need(1)) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> Reader::u16be() {
  if (!need(2)) return std::nullopt;
  const auto hi = static_cast<std::uint16_t>(data_[pos_]);
  const auto lo = static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return static_cast<std::uint16_t>(hi << 8 | lo);
}

std::optional<std::uint32_t> Reader::u24be() {
  if (!need(3)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 3; ++i) v = v << 8 | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 3;
  return v;
}

std::optional<std::uint32_t> Reader::u32be() {
  if (!need(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::optional<crypto::BytesView> Reader::bytes(std::size_t n) {
  if (!need(n)) return std::nullopt;
  const crypto::BytesView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

bool Reader::skip(std::size_t n) {
  if (!need(n)) return false;
  pos_ += n;
  return true;
}

crypto::BytesView Reader::rest() {
  const crypto::BytesView out = data_.subspan(pos_);
  pos_ = data_.size();
  return out;
}

}  // namespace hipcloud::wire
