#include "net/udp.hpp"

#include <stdexcept>

#include "sim/log.hpp"

namespace hipcloud::net {

UdpStack::UdpStack(Node* node) : node_(node) {
  node_->register_protocol(IpProto::kUdp,
                           [this](Packet&& pkt) { on_packet(std::move(pkt)); });
}

std::uint16_t UdpStack::bind(std::uint16_t port, ReceiveFn handler) {
  if (port == 0) {
    while (bindings_.count(next_ephemeral_)) {
      ++next_ephemeral_;
      if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
    }
    port = next_ephemeral_++;
  } else if (bindings_.count(port)) {
    throw std::runtime_error("UdpStack: port " + std::to_string(port) +
                             " already bound on " + node_->name());
  }
  bindings_[port] = std::move(handler);
  return port;
}

void UdpStack::unbind(std::uint16_t port) { bindings_.erase(port); }

void UdpStack::send(std::uint16_t src_port, const Endpoint& dst,
                    crypto::Bytes data, std::optional<IpAddr> src_addr) {
  Packet pkt;
  pkt.dst = dst.addr;
  if (src_addr) {
    pkt.src = *src_addr;
  } else {
    const auto src = node_->select_source(dst.addr);
    if (!src) {
      sim::Log::write(sim::LogLevel::kWarn, node_->network().loop().now(),
                      "udp", node_->name() + ": no source address for " +
                                 dst.addr.to_string());
      return;
    }
    pkt.src = *src;
  }
  pkt.proto = IpProto::kUdp;
  UdpSegment seg;
  seg.src_port = src_port;
  seg.dst_port = dst.port;
  seg.data = std::move(data);
  pkt.payload = seg.serialize();
  pkt.stamp_l3_overhead();
  node_->send(std::move(pkt));
}

void UdpStack::on_packet(Packet&& pkt) {
  UdpSegment seg;
  try {
    seg = UdpSegment::parse(pkt.payload);
  } catch (const std::runtime_error&) {
    return;  // malformed datagrams are silently dropped, as real stacks do
  }
  const auto it = bindings_.find(seg.dst_port);
  if (it == bindings_.end()) return;  // no listener: drop (no ICMP unreachable)
  it->second(Endpoint{pkt.src, seg.src_port}, pkt.dst, std::move(seg.data));
}

}  // namespace hipcloud::net
