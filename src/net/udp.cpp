#include "net/udp.hpp"

#include <stdexcept>

#include "net/wire_reader.hpp"
#include "sim/log.hpp"

namespace hipcloud::net {

UdpStack::UdpStack(Node* node) : node_(node) {
  node_->register_protocol(IpProto::kUdp,
                           [this](Packet&& pkt) { on_packet(std::move(pkt)); });
}

std::uint16_t UdpStack::bind(std::uint16_t port, ReceiveFn handler) {
  if (port == 0) {
    while (bindings_.count(next_ephemeral_)) {
      ++next_ephemeral_;
      if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
    }
    port = next_ephemeral_++;
  } else if (bindings_.count(port)) {
    throw std::runtime_error("UdpStack: port " + std::to_string(port) +
                             " already bound on " + node_->name());
  }
  bindings_[port] = std::move(handler);
  return port;
}

void UdpStack::unbind(std::uint16_t port) { bindings_.erase(port); }

// hipcheck:hot
void UdpStack::send(std::uint16_t src_port, const Endpoint& dst,
                    crypto::Buffer data, std::optional<IpAddr> src_addr) {
  Packet pkt;
  pkt.dst = dst.addr;
  if (src_addr) {
    pkt.src = *src_addr;
  } else {
    const auto src = node_->select_source(dst.addr);
    if (!src) {
      HIPCLOUD_LOG(sim::LogLevel::kWarn, node_->network().loop().now(),
                    "udp", node_->name() + ": no source address for " +
                               dst.addr.to_string());
      return;
    }
    pkt.src = *src;
  }
  pkt.proto = IpProto::kUdp;
  // Header goes into the buffer's headroom — no serialize-and-copy.
  const std::size_t total = UdpSegment::kHeaderSize + data.size();
  std::uint8_t* h = data.prepend(UdpSegment::kHeaderSize);
  h[0] = static_cast<std::uint8_t>(src_port >> 8);
  h[1] = static_cast<std::uint8_t>(src_port);
  h[2] = static_cast<std::uint8_t>(dst.port >> 8);
  h[3] = static_cast<std::uint8_t>(dst.port);
  h[4] = static_cast<std::uint8_t>(total >> 8);
  h[5] = static_cast<std::uint8_t>(total);
  h[6] = h[7] = 0;  // checksum: links are loss-modelled, not bit-flipped
  pkt.payload = std::move(data);
  pkt.stamp_l3_overhead();
  node_->send(std::move(pkt));
}

// hipcheck:wire_input
void UdpStack::on_packet(Packet&& pkt) {
  wire::Reader r(pkt.payload.view());
  const auto src_port = r.u16be();
  const auto dst_port = r.u16be();
  const auto length = r.u16be();
  const auto checksum = r.u16be();
  if (!src_port || !dst_port || !length || !checksum) return;  // malformed
  if (*length < UdpSegment::kHeaderSize ||
      !r.need(*length - UdpSegment::kHeaderSize)) {
    return;  // length field lies about the datagram size: drop
  }
  const auto it = bindings_.find(*dst_port);
  if (it == bindings_.end()) return;  // no listener: drop (no ICMP unreachable)
  pkt.payload.pop_front(UdpSegment::kHeaderSize);
  pkt.payload.resize(*length - UdpSegment::kHeaderSize);
  it->second(Endpoint{pkt.src, *src_port}, pkt.dst, std::move(pkt.payload));
}

}  // namespace hipcloud::net
