#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/node.hpp"
#include "sim/shard.hpp"

namespace hipcloud::net {

class ShardedWorld;

/// One direction of a cross-shard link. A cross-shard connection is a
/// *pair* of these, one owned by each endpoint's shard: every piece of
/// link state a sender touches (rng for loss, busy_until, drop/delivery
/// counters) lives in the sending shard, so the transmit path needs no
/// synchronization. Only the final delivery crosses the seam, as a
/// coordinator post carrying a pool-free copy of the payload.
class CrossLinkHalf : public Link {
 public:
  CrossLinkHalf(sim::ShardCoordinator& coord, std::size_t src_shard,
                std::size_t dst_shard, Network& src_net, Node* local,
                Node* remote, const LinkConfig& config)
      : Link(src_net, local, remote, config),
        coord_(coord),
        src_shard_(src_shard),
        dst_shard_(dst_shard) {}

  /// The opposite half — the Link* actually attached on the remote
  /// node's interface, which the delivery callback uses to find the
  /// right interface index over there.
  void set_twin(CrossLinkHalf* twin) { twin_ = twin; }

 protected:
  void schedule_delivery(sim::Time arrival, Node* to, Packet pkt) override;

 private:
  sim::ShardCoordinator& coord_;
  std::size_t src_shard_;
  std::size_t dst_shard_;
  CrossLinkHalf* twin_ = nullptr;
};

/// A world partitioned into shards: one Network (event loop, buffer
/// pool, rng, nodes, links) per shard, stitched together by cross-shard
/// links and run in conservative lockstep by a sim::ShardCoordinator.
///
/// The partition is part of the topology — the same ShardedWorld build
/// always produces the same per-shard event streams — and the worker
/// count passed to run() is pure execution policy. world_hash() is
/// byte-identical for any worker count.
class ShardedWorld {
 public:
  /// `seed` derives every shard's Network seed via SplitMix64, so two
  /// worlds built with the same seed and topology are identical and
  /// shards never share a generator.
  explicit ShardedWorld(std::size_t shards, std::uint64_t seed = 1);

  std::size_t shard_count() const { return nets_.size(); }
  Network& shard(std::size_t id) { return *nets_[id]; }
  sim::ShardCoordinator& coordinator() { return coord_; }

  struct CrossAttachment {
    Link* a_to_b;  // attached on a (lives in a's shard)
    Link* b_to_a;  // attached on b (lives in b's shard)
    std::size_t iface_a;
    std::size_t iface_b;
  };

  /// Connect node `a` (in shard_a) to node `b` (in shard_b) with a
  /// cross-shard link. `config.latency` must be positive: it is the
  /// channel lookahead registered for the (shard_a, shard_b) seam in
  /// both directions, so each shard's per-round horizon is bounded only
  /// by the seams actually pointing at it. The coordinator's global
  /// lookahead() keeps tracking the smallest cross-shard latency in the
  /// world (the global-min ablation's epoch length).
  CrossAttachment connect_cross(std::size_t shard_a, Node* a,
                                std::size_t shard_b, Node* b,
                                const LinkConfig& config);

  /// Run all shards to `until` on `workers` threads (see
  /// sim::ShardCoordinator::run). Returns total events fired.
  std::size_t run(sim::Time until, unsigned workers = 1);

  /// Shard-id-order merge of every shard's counters.
  sim::PerfCounters merged_perf() const { return coord_.merged_perf(); }
  std::uint64_t world_hash() const { return coord_.world_hash(); }

 private:
  std::vector<std::unique_ptr<Network>> nets_;
  sim::ShardCoordinator coord_;
  std::vector<std::unique_ptr<CrossLinkHalf>> cross_links_;
  sim::Duration min_cross_latency_ = -1;
};

}  // namespace hipcloud::net
