#include "net/nat.hpp"

#include <stdexcept>

#include "net/wire_reader.hpp"
#include "sim/log.hpp"

namespace hipcloud::net {

using crypto::Bytes;

namespace {

/// Extract (src_port, dst_port) style fields from a transport payload.
/// For ICMP echo, the identifier plays the port role on both sides.
struct PortFields {
  std::uint16_t src;
  std::uint16_t dst;
};

bool read_ports(const Packet& pkt, PortFields& out) {
  try {
    switch (pkt.proto) {
      case IpProto::kUdp: {
        const auto seg = UdpSegment::parse(pkt.payload);
        out = {seg.src_port, seg.dst_port};
        return true;
      }
      case IpProto::kTcp: {
        wire::Reader r(pkt.payload);
        const auto src = r.u16be();
        const auto dst = r.u16be();
        if (!src || !dst) return false;
        out = {*src, *dst};
        return true;
      }
      case IpProto::kIcmp: {
        const auto echo = IcmpEcho::parse(pkt.payload);
        out = {echo.ident, echo.ident};
        return true;
      }
      default:
        return false;
    }
  } catch (const std::runtime_error&) {
    return false;
  }
}

// The writers re-check the payload size themselves: read_ports succeeding
// earlier is an invariant of the callers, not of these helpers, and a
// too-short buffer here would be out-of-bounds writes into pooled memory.
void write_src_port(Packet& pkt, std::uint16_t port) {
  switch (pkt.proto) {
    case IpProto::kUdp:
    case IpProto::kTcp:
      if (pkt.payload.size() < 4) return;
      pkt.payload[0] = static_cast<std::uint8_t>(port >> 8);
      pkt.payload[1] = static_cast<std::uint8_t>(port);
      break;
    case IpProto::kIcmp:
      if (pkt.payload.size() < 6) return;
      pkt.payload[4] = static_cast<std::uint8_t>(port >> 8);
      pkt.payload[5] = static_cast<std::uint8_t>(port);
      break;
    default:
      break;
  }
}

void write_dst_port(Packet& pkt, std::uint16_t port) {
  switch (pkt.proto) {
    case IpProto::kUdp:
    case IpProto::kTcp:
      if (pkt.payload.size() < 4) return;
      pkt.payload[2] = static_cast<std::uint8_t>(port >> 8);
      pkt.payload[3] = static_cast<std::uint8_t>(port);
      break;
    case IpProto::kIcmp:
      if (pkt.payload.size() < 6) return;
      pkt.payload[4] = static_cast<std::uint8_t>(port >> 8);
      pkt.payload[5] = static_cast<std::uint8_t>(port);
      break;
    default:
      break;
  }
}

}  // namespace

Nat::Nat(Node* node, std::size_t inside_iface, std::size_t outside_iface,
         Ipv4Addr public_ip)
    : node_(node), inside_iface_(inside_iface), outside_iface_(outside_iface),
      public_ip_(public_ip) {
  node_->set_forwarding(true);
  node_->set_forward_hook([this](Packet& pkt, std::size_t in_iface) {
    return on_forward(pkt, in_iface);
  });
}

std::uint16_t Nat::allocate_port(IpProto proto) {
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const std::uint16_t port = next_port_++;
    if (next_port_ < 1024) next_port_ = 1024;
    if (!by_outside_.count(Key{proto, public_ip_.value(), port})) return port;
  }
  throw std::runtime_error("Nat: port space exhausted");
}

// hipcheck:wire_input
bool Nat::on_forward(Packet& pkt, std::size_t in_iface) {
  if (!pkt.src.is_v4() || !pkt.dst.is_v4()) return true;  // v6 passes through
  if (in_iface == inside_iface_) return translate_outbound(pkt);
  if (in_iface == outside_iface_) return translate_inbound(pkt);
  return true;
}

bool Nat::translate_outbound(Packet& pkt) {
  PortFields ports{};
  if (!read_ports(pkt, ports)) return false;
  const Key inside_key{pkt.proto, pkt.src.v4().value(), ports.src};
  auto it = by_inside_.find(inside_key);
  if (it == by_inside_.end()) {
    const std::uint16_t pub_port = allocate_port(pkt.proto);
    it = by_inside_.emplace(inside_key, pub_port).first;
    by_outside_[Key{pkt.proto, public_ip_.value(), pub_port}] =
        InsideEndpoint{pkt.src.v4(), ports.src};
  }
  pkt.src = public_ip_;
  write_src_port(pkt, it->second);
  return true;
}

bool Nat::translate_inbound(Packet& pkt) {
  if (pkt.dst.v4() != public_ip_) return true;  // not addressed to our mapping
  PortFields ports{};
  if (!read_ports(pkt, ports)) return false;
  const auto it = by_outside_.find(Key{pkt.proto, public_ip_.value(), ports.dst});
  if (it == by_outside_.end()) {
    // Unsolicited inbound: full-cone NAT still requires an existing
    // mapping; drop.
    return false;
  }
  pkt.dst = it->second.addr;
  write_dst_port(pkt, it->second.port);
  return true;
}

}  // namespace hipcloud::net
