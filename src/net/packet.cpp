#include "net/packet.hpp"

#include <cstring>
#include <stdexcept>

#include "net/wire_reader.hpp"

namespace hipcloud::net {

using crypto::append_be;
using crypto::Bytes;
using crypto::BytesView;

std::string Packet::describe() const {
  return src.to_string() + " -> " + dst.to_string() + " proto=" +
         std::to_string(static_cast<int>(proto)) + " len=" +
         std::to_string(wire_size());
}

Bytes serialize_ipv6(const Packet& pkt) {
  if (!pkt.src.is_v6() || !pkt.dst.is_v6()) {
    throw std::runtime_error("serialize_ipv6: not an IPv6 packet");
  }
  Bytes out;
  out.reserve(40 + pkt.payload.size());
  out.push_back(0x60);  // version 6, traffic class 0
  out.push_back(0);
  append_be(out, 0, 2);  // flow label
  append_be(out, pkt.payload.size(), 2);
  out.push_back(static_cast<std::uint8_t>(pkt.proto));
  out.push_back(pkt.ttl);
  const auto& src = pkt.src.v6().bytes();
  const auto& dst = pkt.dst.v6().bytes();
  out.insert(out.end(), src.begin(), src.end());
  out.insert(out.end(), dst.begin(), dst.end());
  out.insert(out.end(), pkt.payload.begin(), pkt.payload.end());
  return out;
}

// hipcheck:wire_input
Packet parse_ipv6(BytesView wire) {
  wire::Reader r(wire);
  const auto hdr = r.bytes(40);
  if (!hdr || ((*hdr)[0] >> 4) != 6) {
    throw std::runtime_error("parse_ipv6: malformed header");
  }
  const BytesView h = *hdr;
  const std::size_t payload_len =
      static_cast<std::size_t>(h[4]) << 8 | h[5];
  const auto payload = r.bytes(payload_len);
  if (!payload) {
    throw std::runtime_error("parse_ipv6: bad payload length");
  }
  Packet pkt;
  pkt.proto = static_cast<IpProto>(h[6]);
  pkt.ttl = h[7];
  pkt.src = Ipv6Addr::from_bytes(h.subspan(8, 16));
  pkt.dst = Ipv6Addr::from_bytes(h.subspan(24, 16));
  pkt.payload.assign(payload->begin(), payload->end());
  pkt.header_overhead = 40;
  return pkt;
}

crypto::Buffer serialize_ipv6_in_place(Packet&& pkt) {
  if (!pkt.src.is_v6() || !pkt.dst.is_v6()) {
    throw std::runtime_error("serialize_ipv6: not an IPv6 packet");
  }
  const std::size_t payload_len = pkt.payload.size();
  crypto::Buffer wire = std::move(pkt.payload);
  std::uint8_t* h = wire.prepend(40);
  h[0] = 0x60;  // version 6, traffic class 0
  h[1] = 0;
  h[2] = h[3] = 0;  // flow label
  h[4] = static_cast<std::uint8_t>(payload_len >> 8);
  h[5] = static_cast<std::uint8_t>(payload_len);
  h[6] = static_cast<std::uint8_t>(pkt.proto);
  h[7] = pkt.ttl;
  const auto& src = pkt.src.v6().bytes();
  const auto& dst = pkt.dst.v6().bytes();
  std::memcpy(h + 8, src.data(), 16);
  std::memcpy(h + 24, dst.data(), 16);
  return wire;
}

// hipcheck:wire_input
Packet parse_ipv6_in_place(crypto::Buffer&& wire) {
  wire::Reader r(wire.view());
  const auto hdr = r.bytes(40);
  if (!hdr || ((*hdr)[0] >> 4) != 6) {
    throw std::runtime_error("parse_ipv6: malformed header");
  }
  const BytesView h = *hdr;
  const std::size_t payload_len =
      static_cast<std::size_t>(h[4]) << 8 | h[5];
  if (!r.need(payload_len)) {
    throw std::runtime_error("parse_ipv6: bad payload length");
  }
  Packet pkt;
  pkt.proto = static_cast<IpProto>(h[6]);
  pkt.ttl = h[7];
  pkt.src = Ipv6Addr::from_bytes(h.subspan(8, 16));
  pkt.dst = Ipv6Addr::from_bytes(h.subspan(24, 16));
  wire.pop_front(40);
  wire.resize(payload_len);  // drop any trailing bytes beyond the v6 length
  pkt.payload = std::move(wire);
  pkt.header_overhead = 40;
  return pkt;
}

Bytes UdpSegment::serialize() const {
  Bytes out;
  out.reserve(kHeaderSize + data.size());
  append_be(out, src_port, 2);
  append_be(out, dst_port, 2);
  append_be(out, kHeaderSize + data.size(), 2);
  append_be(out, 0, 2);  // checksum: links are loss-modelled, not bit-flipped
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

// hipcheck:wire_input
UdpSegment UdpSegment::parse(BytesView wire) {
  wire::Reader r(wire);
  const auto src_port = r.u16be();
  const auto dst_port = r.u16be();
  const auto length = r.u16be();
  const auto checksum = r.u16be();
  if (!src_port || !dst_port || !length || !checksum) {
    throw std::runtime_error("UdpSegment: truncated header");
  }
  std::optional<BytesView> body;
  if (*length >= kHeaderSize) body = r.bytes(*length - kHeaderSize);
  if (!body) {
    throw std::runtime_error("UdpSegment: bad length field");
  }
  UdpSegment seg;
  seg.src_port = *src_port;
  seg.dst_port = *dst_port;
  seg.data.assign(body->begin(), body->end());
  return seg;
}

Bytes IcmpEcho::serialize() const {
  Bytes out;
  out.reserve(kHeaderSize + data.size());
  out.push_back(is_reply ? 0 : 8);  // type: echo reply / echo request
  out.push_back(0);                 // code
  append_be(out, 0, 2);             // checksum (see UDP note)
  append_be(out, ident, 2);
  append_be(out, seq, 2);
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

// hipcheck:wire_input
IcmpEcho IcmpEcho::parse(BytesView wire) {
  wire::Reader r(wire);
  const auto type = r.u8();
  const auto code_checksum = r.bytes(3);
  const auto ident = r.u16be();
  const auto seq = r.u16be();
  if (!type || !code_checksum || !ident || !seq) {
    throw std::runtime_error("IcmpEcho: truncated header");
  }
  if (*type != 0 && *type != 8) {
    throw std::runtime_error("IcmpEcho: unsupported type");
  }
  IcmpEcho echo;
  echo.is_reply = (*type == 0);
  echo.ident = *ident;
  echo.seq = *seq;
  const BytesView body = r.rest();
  echo.data.assign(body.begin(), body.end());
  return echo;
}

}  // namespace hipcloud::net
