// Bounded cursor over untrusted wire bytes — the sanitization sink the
// flow-wire analysis converges on (DESIGN.md §5k).
//
// Every parser that consumes attacker-controlled bytes (HIP messages,
// UDP-encap/Teredo decapsulation, DNS, ICMP, UDP/TCP headers, TLS
// records and handshakes, database results) reads through a Reader
// instead of hand-rolled cursor arithmetic. The contract:
//
//   * every read validates against the remaining window first and
//     reports failure as an empty optional — error-results, not
//     exceptions, on the hot path, and no partial advance on failure;
//   * the internal guard is the non-wrapping shape `n <= size - pos`
//     (never `pos + n <= size`, which wraps for attacker-chosen n);
//   * values obtained through a Reader are therefore bounds-sanitized:
//     a u16be() is at most 65535 and a bytes(n) span is exactly n bytes
//     long, both proven against the real buffer, so the flow-wire-*
//     rules (tools/flow/taint.hpp) treat Reader results as clean.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "crypto/bytes.hpp"

namespace hipcloud::wire {

class Reader {
 public:
  explicit Reader(crypto::BytesView data) : data_(data) {}

  /// Bytes not yet consumed.
  std::size_t remaining() const { return data_.size() - pos_; }

  /// True when `n` more bytes can be read. Non-wrapping by shape:
  /// pos_ never exceeds data_.size(), so the subtraction is exact.
  bool need(std::size_t n) const { return n <= data_.size() - pos_; }

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16be();
  std::optional<std::uint32_t> u24be();
  std::optional<std::uint32_t> u32be();

  /// The next `n` bytes as a view into the underlying buffer; fails
  /// without advancing when fewer remain.
  std::optional<crypto::BytesView> bytes(std::size_t n);

  /// Skip `n` bytes; false (and no advance) when fewer remain.
  bool skip(std::size_t n);

  /// Consume and return everything left (possibly empty).
  crypto::BytesView rest();

 private:
  crypto::BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace hipcloud::wire
