#pragma once

#include <functional>
#include <map>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/stats.hpp"

namespace hipcloud::net {

/// ICMP echo responder + client ("ping"). Installing an IcmpStack makes
/// the node answer echo requests; `ping()` measures RTTs the way the
/// paper's Figure 3 does (20 requests, average RTT).
class IcmpStack {
 public:
  using RttFn = std::function<void(sim::Duration rtt)>;
  using DoneFn = std::function<void(const sim::Summary& rtts, int lost)>;

  explicit IcmpStack(Node* node);

  /// Send `count` echo requests to `dst`, spaced `interval` apart, with
  /// `payload_size` data bytes. `done` fires after the last reply arrives
  /// or times out (2 s per probe).
  void ping(const IpAddr& dst, int count, sim::Duration interval,
            std::size_t payload_size, DoneFn done);

  Node* node() { return node_; }

 private:
  struct Probe {
    sim::Time sent_at;
    bool answered = false;
  };
  struct Session {
    IpAddr dst;
    int total = 0;
    int outstanding = 0;
    std::map<std::uint16_t, Probe> probes;  // keyed by sequence number
    sim::Summary rtts;
    int lost = 0;
    DoneFn done;
  };

  void on_packet(Packet&& pkt);
  void finish_if_complete(std::uint16_t ident);
  IpProto proto_for(const IpAddr& dst) const {
    return dst.is_v4() ? IpProto::kIcmp : IpProto::kIcmpV6;
  }

  Node* node_;
  std::uint16_t next_ident_ = 1;
  std::map<std::uint16_t, Session> sessions_;  // keyed by identifier
};

}  // namespace hipcloud::net
