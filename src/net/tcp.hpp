#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace hipcloud::net {

/// TCP segment header. 20 bytes on the wire (we fold the window-scale
/// option into a 32-bit window field; real stacks negotiate the same
/// effect via RFC 7323, and the paper's iperf runs rely on >64 KB
/// windows).
struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool syn = false;
  bool fin = false;
  bool rst = false;
  bool ack_flag = false;
  std::uint32_t window = 0;

  static constexpr std::size_t kSize = 20;

  /// Write the 20 header bytes into `out` (the zero-copy path: the stack
  /// writes straight into a pooled packet buffer).
  void write(std::uint8_t* out) const;
  crypto::Bytes serialize(crypto::BytesView data) const;
  /// Parse just the header fields from the first kSize bytes.
  static TcpHeader parse_header(crypto::BytesView wire);
  /// Parses header and returns it; `data_out` receives the payload.
  static TcpHeader parse(crypto::BytesView wire, crypto::Bytes& data_out);

  std::string describe() const;
};

struct TcpConfig {
  /// Local receive window advertised to the peer (bytes).
  std::uint32_t receive_window = 87380;  // Linux default, ~85.3 KB
  /// Initial congestion window in segments.
  std::uint32_t initial_cwnd_segments = 10;
  sim::Duration min_rto = sim::from_millis(200);
  sim::Duration initial_rto = sim::from_millis(1000);
  /// Fixed MSS clamp; effective MSS also subtracts shim path overhead.
  std::size_t mss_clamp = 1460;
  /// Consecutive RTO expiries before the connection gives up and aborts
  /// (Linux tcp_retries2 analogue). Keeps simulations with dead peers
  /// finite.
  int max_consecutive_rtos = 8;
};

class TcpStack;

/// One TCP connection. Reno-style congestion control (slow start,
/// congestion avoidance, fast retransmit/recovery), cumulative ACKs,
/// out-of-order reassembly, RFC 6298 RTO estimation.
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  using ConnectFn = std::function<void()>;
  /// Received payload is handed over as a pooled Buffer moved out of the
  /// packet; callbacks written against crypto::Bytes still work (implicit
  /// conversion copies at the app boundary).
  using DataFn = std::function<void(crypto::Buffer)>;
  using CloseFn = std::function<void()>;

  enum class State {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait1,
    kFinWait2,
    kCloseWait,
    kLastAck,
    kClosing,
    kTimeWait,
  };

  ~TcpConnection();

  /// Queue application data for transmission.
  void send(crypto::Bytes data);
  /// Half-close: FIN after all queued data drains.
  void close();
  /// Abort with RST.
  void reset();

  void on_connect(ConnectFn fn) { on_connect_ = std::move(fn); }
  void on_data(DataFn fn) { on_data_ = std::move(fn); }
  void on_close(CloseFn fn) { on_close_ = std::move(fn); }

  /// Release the registered callbacks. Application closures routinely
  /// capture the connection's own shared_ptr (`conn->on_data([conn](...)`),
  /// which is a reference cycle the stack must break once the connection
  /// can never fire them again — on full close and at stack teardown.
  void drop_handlers() {
    on_connect_ = nullptr;
    on_data_ = nullptr;
    on_close_ = nullptr;
  }

  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  const Endpoint& local() const { return local_; }
  const Endpoint& remote() const { return remote_; }
  std::size_t mss() const { return mss_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  /// Bytes queued or in flight (application backpressure signal).
  std::size_t send_queue_bytes() const { return send_buf_.size(); }
  /// Bytes the peer has acknowledged (sender-side goodput).
  std::uint64_t bytes_acked() const {
    const std::uint32_t flight = snd_nxt_ - snd_una_;
    return bytes_sent_ > flight ? bytes_sent_ - flight : 0;
  }
  std::uint32_t cwnd() const { return cwnd_; }
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  friend class TcpStack;

  TcpConnection(TcpStack* stack, Endpoint local, Endpoint remote,
                const TcpConfig& config);

  void start_connect();
  void start_accept(const TcpHeader& syn);
  void handle_segment(const TcpHeader& header, crypto::Buffer data);
  void try_send();
  void send_segment(std::uint32_t seq, crypto::BytesView data, bool syn,
                    bool fin, bool ack);
  void send_ack();
  void send_rst();
  void process_ack(const TcpHeader& header);
  void process_data(const TcpHeader& header, crypto::Buffer data);
  void arm_rto();
  void cancel_rto();
  void on_rto();
  void update_rtt(sim::Duration measured);
  void enter_time_wait();
  void become_closed();
  std::uint32_t flight_size() const { return snd_nxt_ - snd_una_; }
  std::uint32_t usable_window() const;

  TcpStack* stack_;
  Endpoint local_;
  Endpoint remote_;
  TcpConfig config_;
  State state_ = State::kClosed;
  std::size_t mss_ = 1460;

  // Send side.
  std::uint32_t iss_ = 0;        // initial send sequence
  std::uint32_t snd_una_ = 0;    // oldest unacknowledged
  std::uint32_t snd_nxt_ = 0;    // next to send
  std::uint32_t peer_window_ = 0;
  std::deque<std::uint8_t> send_buf_;  // bytes from snd_una_ onwards
  bool fin_queued_ = false;
  bool fin_sent_ = false;

  // Receive side.
  std::uint32_t irs_ = 0;      // initial receive sequence
  std::uint32_t rcv_nxt_ = 0;  // next expected
  std::map<std::uint32_t, crypto::Buffer> reassembly_;
  bool peer_fin_seq_valid_ = false;
  std::uint32_t peer_fin_seq_ = 0;

  // Congestion control (Reno).
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0xffffffff;
  std::uint32_t dup_acks_ = 0;
  bool in_fast_recovery_ = false;
  std::uint32_t recover_ = 0;

  // RTO estimation (RFC 6298).
  bool rtt_valid_ = false;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  sim::Duration rto_;
  sim::EventHandle rto_timer_;
  bool rto_armed_ = false;
  int consecutive_rtos_ = 0;
  // RTT sampling: one timed segment at a time (Karn's algorithm).
  bool timing_ = false;
  std::uint32_t timed_seq_ = 0;
  sim::Time timed_sent_at_ = 0;

  // Callbacks + stats.
  ConnectFn on_connect_;
  DataFn on_data_;
  CloseFn on_close_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t retransmissions_ = 0;
};

/// Per-node TCP layer: connection table + listeners.
class TcpStack {
 public:
  using AcceptFn = std::function<void(std::shared_ptr<TcpConnection>)>;

  explicit TcpStack(Node* node, TcpConfig config = {});
  ~TcpStack();

  /// Active open. The returned connection fires on_connect when
  /// established. `src_addr` pins the source address (e.g. an LSI or HIT);
  /// otherwise source selection applies.
  std::shared_ptr<TcpConnection> connect(
      const Endpoint& remote, std::optional<IpAddr> src_addr = std::nullopt);

  /// Passive open on a local port (any local address).
  void listen(std::uint16_t port, AcceptFn on_accept);
  void close_listener(std::uint16_t port);

  Node* node() { return node_; }
  const TcpConfig& config() const { return config_; }
  sim::EventLoop& loop();

  std::uint64_t active_connections() const { return connections_.size(); }

 private:
  friend class TcpConnection;

  struct FourTuple {
    IpAddr local_addr;
    std::uint16_t local_port;
    IpAddr remote_addr;
    std::uint16_t remote_port;
    auto operator<=>(const FourTuple&) const = default;
  };

  void on_packet(Packet&& pkt);
  void transmit(const Endpoint& local, const Endpoint& remote,
                const TcpHeader& header, crypto::BytesView data);
  void remove(TcpConnection* conn);
  std::uint16_t ephemeral_port();
  std::uint32_t random_isn();

  Node* node_;
  TcpConfig config_;
  std::map<FourTuple, std::shared_ptr<TcpConnection>> connections_;
  std::map<std::uint16_t, AcceptFn> listeners_;
  std::uint16_t next_ephemeral_ = 32768;
};

}  // namespace hipcloud::net
