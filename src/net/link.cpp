#include "net/link.hpp"

#include <stdexcept>
#include <utility>

#include "net/node.hpp"
#include "sim/log.hpp"

namespace hipcloud::net {

Link::Link(Network& net, Node* a, Node* b, const LinkConfig& config)
    : net_(net), config_(config), a_(a), b_(b) {
  forward_.to = b;
  backward_.to = a;
}

Node* Link::peer_of(const Node* node) const {
  if (node == a_) return b_;
  if (node == b_) return a_;
  throw std::logic_error("Link::peer_of: node not attached");
}

Link::Direction& Link::direction_from(const Node* from) {
  if (from == a_) return forward_;
  if (from == b_) return backward_;
  throw std::logic_error("Link::transmit: node not attached");
}

// hipcheck:hot
bool Link::transmit(Packet pkt, const Node* from) {
  auto& loop = net_.loop();
  if (down_) {
    ++dropped_;
    return false;
  }
  if (pkt.wire_size() > config_.mtu + 20) {
    // +20: grace for the structured L3 header bookkeeping; anything
    // beyond is a genuine MTU violation by a mis-sized sender.
    ++dropped_;
    HIPCLOUD_LOG(sim::LogLevel::kDebug, loop.now(), "link",
                 "MTU drop " + pkt.describe());
    return false;
  }
  const double loss =
      config_.loss_rate + fault_loss_ - config_.loss_rate * fault_loss_;
  if (loss > 0.0 && net_.rng().uniform() < loss) {
    ++dropped_;
    return false;
  }
  Direction& dir = direction_from(from);
  const sim::Time now = loop.now();
  const sim::Time start = std::max(now, dir.busy_until);
  if (start - now > config_.max_queue_delay) {
    ++dropped_;
    HIPCLOUD_LOG(sim::LogLevel::kDebug, now, "link",
                 "queue drop " + pkt.describe());
    return false;
  }
  const auto serialization = static_cast<sim::Duration>(
      static_cast<double>(pkt.wire_size()) * 8.0 / config_.bandwidth_bps *
      static_cast<double>(sim::kSecond));
  dir.busy_until = start + serialization;
  ++delivered_;
  delivered_bytes_ += pkt.wire_size();

  Node* to = dir.to;
  const sim::Time arrival = dir.busy_until + config_.latency + fault_latency_;
  schedule_delivery(arrival, to, std::move(pkt));
  return true;
}

void Link::schedule_delivery(sim::Time arrival, Node* to, Packet pkt) {
  // Destination interface index: found at delivery time to keep Link
  // independent of attachment order.
  net_.loop().schedule_at(arrival, [to, this, p = std::move(pkt)]() mutable {
    std::size_t iface = 0;
    for (std::size_t i = 0; i < to->interface_count(); ++i) {
      if (to->link_at(i) == this) {
        iface = i;
        break;
      }
    }
    to->deliver(std::move(p), iface);
  });
}

}  // namespace hipcloud::net
