#include "net/node.hpp"

#include <algorithm>

#include "sim/log.hpp"

namespace hipcloud::net {

namespace {

/// Does `addr` fall inside prefix/prefix_len? Families must match.
bool prefix_match(const IpAddr& addr, const IpAddr& prefix, int prefix_len) {
  if (addr.is_v4() != prefix.is_v4()) return false;
  if (prefix_len == 0) return true;
  if (addr.is_v4()) {
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
    return (addr.v4().value() & mask) == (prefix.v4().value() & mask);
  }
  const auto& a = addr.v6().bytes();
  const auto& p = prefix.v6().bytes();
  int bits = prefix_len;
  for (int i = 0; i < 16 && bits > 0; ++i, bits -= 8) {
    if (bits >= 8) {
      if (a[i] != p[i]) return false;
    } else {
      const std::uint8_t mask = static_cast<std::uint8_t>(0xff << (8 - bits));
      return (a[i] & mask) == (p[i] & mask);
    }
  }
  return true;
}

}  // namespace

Node::Node(Network& net, std::string name, double cpu_cycles_per_second)
    : net_(net), name_(std::move(name)),
      cpu_(net.loop(), cpu_cycles_per_second) {}

std::size_t Node::attach_link(Link* link) {
  ifaces_.push_back(Interface{link, {}});
  return ifaces_.size() - 1;
}

void Node::add_address(std::size_t iface, const IpAddr& addr) {
  ifaces_.at(iface).addrs.push_back(addr);
  for (const auto& fn : addr_observers_) fn(addr, iface, true);
}

void Node::remove_address(std::size_t iface, const IpAddr& addr) {
  auto& addrs = ifaces_.at(iface).addrs;
  const auto before = addrs.size();
  std::erase(addrs, addr);
  if (addrs.size() != before) {
    for (const auto& fn : addr_observers_) fn(addr, iface, false);
  }
}

void Node::remove_routes_via(std::size_t iface) {
  std::erase_if(routes_,
                [iface](const Route& r) { return r.iface == iface; });
}

void Node::remove_route(const IpAddr& prefix, int prefix_len) {
  std::erase_if(routes_, [&](const Route& r) {
    return r.prefix == prefix && r.prefix_len == prefix_len;
  });
}

bool Node::owns_address(const IpAddr& addr) const {
  for (const auto& iface : ifaces_) {
    if (std::find(iface.addrs.begin(), iface.addrs.end(), addr) !=
        iface.addrs.end()) {
      return true;
    }
  }
  return false;
}

std::optional<IpAddr> Node::first_address(bool v6) const {
  for (const auto& iface : ifaces_) {
    for (const auto& addr : iface.addrs) {
      if (addr.is_v6() == v6) return addr;
    }
  }
  return std::nullopt;
}

std::optional<IpAddr> Node::select_source(const IpAddr& dst) const {
  std::optional<IpAddr> family_fallback;
  for (const auto& iface : ifaces_) {
    for (const auto& addr : iface.addrs) {
      if (addr.is_v4() != dst.is_v4()) continue;
      const bool kind_match = addr.is_hit() == dst.is_hit() &&
                              addr.is_lsi() == dst.is_lsi() &&
                              addr.is_teredo() == dst.is_teredo();
      if (kind_match) return addr;
      if (!family_fallback && !addr.is_hit() && !addr.is_lsi()) {
        family_fallback = addr;
      }
    }
  }
  return family_fallback;
}

void Node::add_route(const IpAddr& prefix, int prefix_len, std::size_t iface,
                     std::optional<IpAddr> gateway) {
  routes_.push_back(Route{prefix, prefix_len, iface, std::move(gateway)});
  // Longest prefix first so lookup can take the first match.
  std::stable_sort(routes_.begin(), routes_.end(),
                   [](const Route& x, const Route& y) {
                     return x.prefix_len > y.prefix_len;
                   });
}

void Node::set_default_route(std::size_t iface, std::optional<IpAddr> gateway) {
  add_route(IpAddr(Ipv4Addr(0u)), 0, iface, gateway);
  add_route(IpAddr(Ipv6Addr()), 0, iface, std::move(gateway));
}

const Node::Route* Node::lookup_route(const IpAddr& dst) const {
  for (const auto& route : routes_) {
    if (prefix_match(dst, route.prefix, route.prefix_len)) return &route;
  }
  return nullptr;
}

void Node::register_protocol(IpProto proto, ProtoHandler handler) {
  proto_handlers_[proto] = std::move(handler);
}

void Node::add_shim(std::shared_ptr<L3Shim> shim) {
  shims_.push_back(std::move(shim));
}

std::size_t Node::path_overhead(const IpAddr& dst) const {
  std::size_t total = 0;
  for (const auto& shim : shims_) total += shim->path_overhead(dst);
  return total;
}

// hipcheck:hot
void Node::send(Packet pkt) {
  if (down_) return;
  for (const auto& shim : shims_) {
    if (shim->outbound(pkt)) return;  // consumed; shim re-injects
  }
  send_raw(std::move(pkt));
}

// hipcheck:hot
void Node::send_raw(Packet pkt) {
  if (down_) return;
  // Loopback: packets to our own address short-circuit through the stack
  // with no wire cost (matches OS loopback behaviour).
  if (owns_address(pkt.dst)) {
    net_.loop().schedule(0, [this, p = std::move(pkt)]() mutable {
      local_deliver(std::move(p));
    });
    return;
  }
  const Route* route = lookup_route(pkt.dst);
  if (route == nullptr || ifaces_[route->iface].link == nullptr) {
    ++dropped_no_route_;
    HIPCLOUD_LOG(sim::LogLevel::kDebug, net_.loop().now(), name_.c_str(),
                 "no route to " + pkt.dst.to_string());
    return;
  }
  ++sent_packets_;
  ifaces_[route->iface].link->transmit(std::move(pkt), this);
}

// hipcheck:hot
void Node::deliver(Packet&& pkt, std::size_t in_iface) {
  if (down_) return;  // crashed: in-flight packets vanish
  if (owns_address(pkt.dst)) {
    local_deliver(std::move(pkt));
    return;
  }
  // Not ours: forward if we are a router/middlebox.
  if (!forwarding_) {
    HIPCLOUD_LOG(sim::LogLevel::kDebug, net_.loop().now(), name_.c_str(),
                 "not for us, not forwarding: " + pkt.describe());
    return;
  }
  if (pkt.ttl == 0) return;
  pkt.ttl--;
  if (forward_hook_ && !forward_hook_(pkt, in_iface)) return;
  // The hook may have rewritten dst to one of our own addresses
  // (e.g. NAT inbound translation targeting a local service).
  if (owns_address(pkt.dst)) {
    local_deliver(std::move(pkt));
    return;
  }
  const Route* route = lookup_route(pkt.dst);
  if (route == nullptr || ifaces_[route->iface].link == nullptr) {
    ++dropped_no_route_;
    return;
  }
  ++forwarded_packets_;
  ifaces_[route->iface].link->transmit(std::move(pkt), this);
}

void Node::local_deliver(Packet&& pkt) {
  if (down_) return;
  ++received_packets_;
  ++net_.loop().perf().packets_delivered;
  for (const auto& shim : shims_) {
    if (shim->inbound(pkt)) return;
  }
  const auto it = proto_handlers_.find(pkt.proto);
  if (it == proto_handlers_.end()) {
    HIPCLOUD_LOG(sim::LogLevel::kDebug, net_.loop().now(), name_.c_str(),
                 "no handler for proto " +
                     std::to_string(static_cast<int>(pkt.proto)));
    return;
  }
  it->second(std::move(pkt));
}

Network::Network(std::uint64_t seed) : rng_(seed) {
  pool_.set_perf(&loop_.perf());
}

Node* Network::add_node(std::string name, double cpu_cycles_per_second) {
  nodes_.push_back(
      std::make_unique<Node>(*this, std::move(name), cpu_cycles_per_second));
  return nodes_.back().get();
}

Network::Attachment Network::connect(Node* a, Node* b,
                                     const LinkConfig& config) {
  links_.push_back(std::make_unique<Link>(*this, a, b, config));
  Link* link = links_.back().get();
  return Attachment{link, a->attach_link(link), b->attach_link(link)};
}

Node* Network::find(const std::string& name) const {
  for (const auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return nullptr;
}

}  // namespace hipcloud::net
