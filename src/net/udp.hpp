#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace hipcloud::net {

/// Per-node UDP layer: port demultiplexing over the node's IP layer.
/// Create one per node that speaks UDP; it registers itself for
/// IpProto::kUdp on construction.
class UdpStack {
 public:
  /// (source endpoint, local destination address, payload). The payload
  /// arrives as a pooled Buffer moved straight out of the packet; handlers
  /// written against crypto::Bytes still work (the implicit conversion
  /// copies at the boundary).
  using ReceiveFn =
      std::function<void(const Endpoint& from, const IpAddr& local,
                         crypto::Buffer data)>;

  explicit UdpStack(Node* node);

  /// Bind a receive callback to a port; port 0 picks an ephemeral port.
  /// Returns the bound port. Throws std::runtime_error if taken.
  std::uint16_t bind(std::uint16_t port, ReceiveFn handler);

  void unbind(std::uint16_t port);

  /// Send a datagram from `src_port` to `dst`. Source address is selected
  /// from the node unless `src_addr` pins it. The 8-byte UDP header is
  /// prepended into the buffer's headroom in place.
  void send(std::uint16_t src_port, const Endpoint& dst, crypto::Buffer data,
            std::optional<IpAddr> src_addr = std::nullopt);

  Node* node() { return node_; }

 private:
  void on_packet(Packet&& pkt);

  Node* node_;
  std::map<std::uint16_t, ReceiveFn> bindings_;
  std::uint16_t next_ephemeral_ = 49152;
};

}  // namespace hipcloud::net
