#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace hipcloud::net {

class Node;
class Network;

/// Full-duplex point-to-point link parameters.
struct LinkConfig {
  /// Bits per second each direction can carry.
  double bandwidth_bps = 1e9;
  /// One-way propagation delay.
  sim::Duration latency = sim::from_micros(50);
  /// Tail-drop threshold expressed as maximum queueing delay: a packet
  /// whose transmission could not start within this bound is dropped.
  sim::Duration max_queue_delay = sim::from_millis(50);
  /// Independent random loss probability per packet (0 disables).
  double loss_rate = 0.0;
  /// Maximum transmission unit in bytes; oversized packets are dropped
  /// (the stack sizes TCP MSS / UDP payloads to respect this).
  std::size_t mtu = 1500;
};

/// A link between two nodes. Each direction models serialization delay
/// (wire_size/bandwidth), propagation latency, and a bounded queue.
class Link {
 public:
  Link(Network& net, Node* a, Node* b, const LinkConfig& config);
  virtual ~Link() = default;

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Transmit a packet from `from` towards the opposite endpoint.
  /// Returns false when the packet was dropped (queue overflow, loss or
  /// MTU violation).
  bool transmit(Packet pkt, const Node* from);

  Node* peer_of(const Node* node) const;
  const LinkConfig& config() const { return config_; }

  /// An administratively-down link drops everything (migration source,
  /// failure injection).
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Fault overlays (driven by sim::FaultInjector): additional random
  /// loss and extra one-way latency layered on top of the configured
  /// values for the duration of a fault window. Both reset to 0 on
  /// revert; neither touches config_, so reverting restores the exact
  /// pre-fault behaviour.
  void set_fault_loss(double rate) { fault_loss_ = rate; }
  double fault_loss() const { return fault_loss_; }
  void set_fault_extra_latency(sim::Duration extra) { fault_latency_ = extra; }
  sim::Duration fault_extra_latency() const { return fault_latency_; }

  std::uint64_t delivered_packets() const { return delivered_; }
  std::uint64_t dropped_packets() const { return dropped_; }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }

 protected:
  /// Delivery hook: transmit() has done loss/queue/serialization and
  /// computed the arrival instant; this schedules the actual handoff to
  /// `to`. The base implementation schedules into this world's own loop.
  /// Cross-shard half-links override it to post the delivery into the
  /// destination shard's future through the shard coordinator — every
  /// other physics stays identical, and all of it runs on the sending
  /// shard's thread against the sending shard's rng/counters.
  virtual void schedule_delivery(sim::Time arrival, Node* to, Packet pkt);

  Network& network() { return net_; }

 private:
  struct Direction {
    Node* to = nullptr;
    sim::Time busy_until = 0;
  };

  Direction& direction_from(const Node* from);

  Network& net_;
  LinkConfig config_;
  Direction forward_;   // a -> b
  Direction backward_;  // b -> a
  Node* a_;
  Node* b_;
  bool down_ = false;
  double fault_loss_ = 0.0;
  sim::Duration fault_latency_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delivered_bytes_ = 0;
};

}  // namespace hipcloud::net
