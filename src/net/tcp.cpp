#include "net/tcp.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "net/wire_reader.hpp"
#include "sim/check.hpp"
#include "sim/log.hpp"

namespace hipcloud::net {

using crypto::Bytes;
using crypto::BytesView;

namespace {

// Modular 32-bit sequence comparisons.
inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }

constexpr std::uint8_t kFlagSyn = 0x02;
constexpr std::uint8_t kFlagFin = 0x01;
constexpr std::uint8_t kFlagRst = 0x04;
constexpr std::uint8_t kFlagAck = 0x10;

constexpr sim::Duration kTimeWaitDuration = 2 * sim::kSecond;
constexpr sim::Duration kMaxRto = 60 * sim::kSecond;

}  // namespace

void TcpHeader::write(std::uint8_t* out) const {
  out[0] = static_cast<std::uint8_t>(src_port >> 8);
  out[1] = static_cast<std::uint8_t>(src_port);
  out[2] = static_cast<std::uint8_t>(dst_port >> 8);
  out[3] = static_cast<std::uint8_t>(dst_port);
  out[4] = static_cast<std::uint8_t>(seq >> 24);
  out[5] = static_cast<std::uint8_t>(seq >> 16);
  out[6] = static_cast<std::uint8_t>(seq >> 8);
  out[7] = static_cast<std::uint8_t>(seq);
  out[8] = static_cast<std::uint8_t>(ack >> 24);
  out[9] = static_cast<std::uint8_t>(ack >> 16);
  out[10] = static_cast<std::uint8_t>(ack >> 8);
  out[11] = static_cast<std::uint8_t>(ack);
  std::uint8_t flags = 0;
  if (syn) flags |= kFlagSyn;
  if (fin) flags |= kFlagFin;
  if (rst) flags |= kFlagRst;
  if (ack_flag) flags |= kFlagAck;
  out[12] = 0x50;  // data offset 5 words, mirroring a real header
  out[13] = flags;
  out[14] = static_cast<std::uint8_t>(window >> 24);
  out[15] = static_cast<std::uint8_t>(window >> 16);
  out[16] = static_cast<std::uint8_t>(window >> 8);
  out[17] = static_cast<std::uint8_t>(window);
  out[18] = out[19] = 0;  // checksum placeholder
}

Bytes TcpHeader::serialize(BytesView data) const {
  Bytes out(kSize + data.size());
  write(out.data());
  if (!data.empty()) std::memcpy(out.data() + kSize, data.data(), data.size());
  return out;
}

// hipcheck:wire_input
TcpHeader TcpHeader::parse_header(BytesView wire) {
  hipcloud::wire::Reader r(wire);
  const auto src_port = r.u16be();
  const auto dst_port = r.u16be();
  const auto seq = r.u32be();
  const auto ack = r.u32be();
  const auto off_flags = r.bytes(2);  // data offset byte + flags byte
  const auto window = r.u32be();
  const auto checksum = r.bytes(2);
  if (!src_port || !dst_port || !seq || !ack || !off_flags || !window ||
      !checksum) {
    throw std::runtime_error("TcpHeader: truncated");
  }
  TcpHeader h;
  h.src_port = *src_port;
  h.dst_port = *dst_port;
  h.seq = *seq;
  h.ack = *ack;
  const std::uint8_t flags = (*off_flags)[1];
  h.syn = flags & kFlagSyn;
  h.fin = flags & kFlagFin;
  h.rst = flags & kFlagRst;
  h.ack_flag = flags & kFlagAck;
  h.window = *window;
  return h;
}

// hipcheck:wire_input
TcpHeader TcpHeader::parse(BytesView wire, Bytes& data_out) {
  TcpHeader h = parse_header(wire);
  hipcloud::wire::Reader r(wire);
  if (!r.skip(kSize)) throw std::runtime_error("TcpHeader: truncated");
  const BytesView body = r.rest();
  data_out.assign(body.begin(), body.end());
  return h;
}

std::string TcpHeader::describe() const {
  std::string flags;
  if (syn) flags += "S";
  if (fin) flags += "F";
  if (rst) flags += "R";
  if (ack_flag) flags += ".";
  return "tcp[" + flags + "] seq=" + std::to_string(seq) +
         " ack=" + std::to_string(ack) + " win=" + std::to_string(window);
}

// ---------------------------------------------------------------------------
// TcpConnection

TcpConnection::TcpConnection(TcpStack* stack, Endpoint local, Endpoint remote,
                             const TcpConfig& config)
    : stack_(stack), local_(std::move(local)), remote_(std::move(remote)),
      config_(config), rto_(config.initial_rto) {
  // Effective MSS: L3+L4 headers plus whatever shims (HIP ESP, Teredo)
  // will add on the path.
  const std::size_t l3 = remote_.addr.is_v4() ? 20 : 40;
  const std::size_t shim = stack_->node()->path_overhead(remote_.addr);
  const std::size_t mtu_budget = 1500 - l3 - TcpHeader::kSize;
  mss_ = std::min(config_.mss_clamp,
                  mtu_budget > shim ? mtu_budget - shim : 536);
  cwnd_ = static_cast<std::uint32_t>(config_.initial_cwnd_segments * mss_);
}

TcpConnection::~TcpConnection() { cancel_rto(); }

void TcpConnection::start_connect() {
  iss_ = stack_->random_isn();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN occupies one sequence number
  state_ = State::kSynSent;
  send_segment(iss_, {}, /*syn=*/true, /*fin=*/false, /*ack=*/false);
  arm_rto();
}

void TcpConnection::start_accept(const TcpHeader& syn) {
  irs_ = syn.seq;
  rcv_nxt_ = syn.seq + 1;
  peer_window_ = syn.window;
  iss_ = stack_->random_isn();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  state_ = State::kSynReceived;
  send_segment(iss_, {}, /*syn=*/true, /*fin=*/false, /*ack=*/true);
  arm_rto();
}

void TcpConnection::send(Bytes data) {
  if (state_ != State::kEstablished && state_ != State::kSynSent &&
      state_ != State::kSynReceived && state_ != State::kCloseWait) {
    HIPCLOUD_LOG(sim::LogLevel::kWarn, stack_->loop().now(), "tcp",
                  "send on closed connection to " + remote_.to_string());
    return;
  }
  // Data after close() is an API-misuse bug in the caller (distinct from
  // the closed-state branch above, which network races reach
  // legitimately). Normal builds drop it silently per the original
  // contract; audit builds surface the caller.
  HIPCLOUD_AUDIT(!fin_queued_, "TcpConnection::send() after close()");
  if (fin_queued_) return;  // no data after close()
  send_buf_.insert(send_buf_.end(), data.begin(), data.end());
  try_send();
}

void TcpConnection::close() {
  switch (state_) {
    case State::kEstablished:
    case State::kSynReceived:
      fin_queued_ = true;
      state_ = State::kFinWait1;
      try_send();
      break;
    case State::kCloseWait:
      fin_queued_ = true;
      state_ = State::kLastAck;
      try_send();
      break;
    case State::kSynSent:
      become_closed();
      break;
    default:
      break;
  }
}

void TcpConnection::reset() {
  if (state_ != State::kClosed) send_rst();
  become_closed();
}

std::uint32_t TcpConnection::usable_window() const {
  const std::uint32_t wnd = std::min(cwnd_, peer_window_);
  const std::uint32_t flight = flight_size();
  return wnd > flight ? wnd - flight : 0;
}

// hipcheck:hot
void TcpConnection::try_send() {
  if (state_ != State::kEstablished && state_ != State::kFinWait1 &&
      state_ != State::kLastAck && state_ != State::kCloseWait) {
    return;
  }
  // Bytes already sent but unacked sit at the front of send_buf_
  // (buffer base sequence == snd_una_, +1 if our SYN is still unacked).
  for (;;) {
    const std::uint32_t already_sent = snd_nxt_ - snd_una_ - (fin_sent_ ? 1 : 0);
    if (already_sent >= send_buf_.size()) break;
    const std::uint32_t unsent =
        static_cast<std::uint32_t>(send_buf_.size()) - already_sent;
    std::uint32_t can_send = std::min<std::uint32_t>(usable_window(), unsent);
    if (can_send == 0) break;
    const auto chunk =
        std::min<std::uint32_t>(can_send, static_cast<std::uint32_t>(mss_));
    Bytes data(send_buf_.begin() + already_sent,
               send_buf_.begin() + already_sent + chunk);
    send_segment(snd_nxt_, data, false, false, true);
    if (!timing_) {
      timing_ = true;
      timed_seq_ = snd_nxt_;
      timed_sent_at_ = stack_->loop().now();
    }
    snd_nxt_ += chunk;
    bytes_sent_ += chunk;
    arm_rto();
  }
  // FIN once everything queued has been sent.
  if (fin_queued_ && !fin_sent_ &&
      snd_nxt_ - snd_una_ == send_buf_.size()) {
    send_segment(snd_nxt_, {}, false, /*fin=*/true, true);
    snd_nxt_ += 1;
    fin_sent_ = true;
    arm_rto();
  }
}

// hipcheck:hot
void TcpConnection::send_segment(std::uint32_t seq, BytesView data, bool syn,
                                 bool fin, bool ack) {
  TcpHeader h;
  h.src_port = local_.port;
  h.dst_port = remote_.port;
  h.seq = seq;
  h.ack = ack ? rcv_nxt_ : 0;
  h.syn = syn;
  h.fin = fin;
  h.ack_flag = ack;
  h.window = config_.receive_window;
  stack_->transmit(local_, remote_, h, data);
}

void TcpConnection::send_ack() { send_segment(snd_nxt_, {}, false, false, true); }

void TcpConnection::send_rst() {
  TcpHeader h;
  h.src_port = local_.port;
  h.dst_port = remote_.port;
  h.seq = snd_nxt_;
  h.rst = true;
  stack_->transmit(local_, remote_, h, {});
}

void TcpConnection::update_rtt(sim::Duration measured) {
  const double m = static_cast<double>(measured);
  if (!rtt_valid_) {
    srtt_ = m;
    rttvar_ = m / 2;
    rtt_valid_ = true;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - m);
    srtt_ = 0.875 * srtt_ + 0.125 * m;
  }
  rto_ = static_cast<sim::Duration>(srtt_ + std::max(4 * rttvar_, 1.0));
  rto_ = std::clamp(rto_, config_.min_rto, kMaxRto);
}

void TcpConnection::arm_rto() {
  cancel_rto();
  if (flight_size() == 0) return;
  auto self = weak_from_this();
  rto_timer_ = stack_->loop().schedule(rto_, [self] {
    if (const auto conn = self.lock()) conn->on_rto();
  });
  rto_armed_ = true;
}

void TcpConnection::cancel_rto() {
  if (rto_armed_) {
    stack_->loop().cancel(rto_timer_);
    rto_armed_ = false;
  }
}

void TcpConnection::on_rto() {
  rto_armed_ = false;
  if (state_ == State::kClosed || flight_size() == 0) return;
  if (++consecutive_rtos_ > config_.max_consecutive_rtos) {
    HIPCLOUD_LOG(sim::LogLevel::kDebug, stack_->loop().now(), "tcp",
                  "giving up on " + remote_.to_string());
    become_closed();
    return;
  }
  ++retransmissions_;
  // Back off and collapse to one segment (RFC 5681 loss response).
  ssthresh_ = std::max<std::uint32_t>(flight_size() / 2,
                                      2 * static_cast<std::uint32_t>(mss_));
  cwnd_ = static_cast<std::uint32_t>(mss_);
  in_fast_recovery_ = false;
  dup_acks_ = 0;
  rto_ = std::min(rto_ * 2, kMaxRto);
  timing_ = false;  // Karn: never time retransmitted segments

  if (state_ == State::kSynSent) {
    send_segment(iss_, {}, true, false, false);
  } else if (state_ == State::kSynReceived) {
    send_segment(iss_, {}, true, false, true);
  } else {
    // Retransmit the first unacked chunk.
    const auto chunk = std::min<std::size_t>(mss_, send_buf_.size());
    if (chunk > 0) {
      Bytes data(send_buf_.begin(),
                 send_buf_.begin() + static_cast<long>(chunk));
      send_segment(snd_una_, data, false, false, true);
    } else if (fin_sent_) {
      send_segment(snd_nxt_ - 1, {}, false, true, true);
    }
  }
  arm_rto();
}

// hipcheck:hot
void TcpConnection::handle_segment(const TcpHeader& h, crypto::Buffer data) {
  if (h.rst) {
    become_closed();
    return;
  }
  switch (state_) {
    case State::kSynSent:
      if (h.syn && h.ack_flag && h.ack == iss_ + 1) {
        irs_ = h.seq;
        rcv_nxt_ = h.seq + 1;
        snd_una_ = h.ack;
        peer_window_ = h.window;
        state_ = State::kEstablished;
        cancel_rto();
        send_ack();
        if (on_connect_) on_connect_();
        try_send();
      }
      return;
    case State::kSynReceived:
      if (h.ack_flag && h.ack == iss_ + 1) {
        snd_una_ = h.ack;
        peer_window_ = h.window;
        state_ = State::kEstablished;
        cancel_rto();
        if (on_connect_) on_connect_();
        // Data may ride on the same segment; fall through to normal
        // processing below.
        break;
      }
      if (h.syn && !h.ack_flag) {
        // Duplicate SYN: re-send SYN-ACK.
        send_segment(iss_, {}, true, false, true);
        return;
      }
      return;
    case State::kClosed:
      return;
    default:
      break;
  }

  if (h.ack_flag) process_ack(h);
  if (!data.empty() || h.fin) process_data(h, std::move(data));
}

// hipcheck:hot
void TcpConnection::process_ack(const TcpHeader& h) {
  peer_window_ = h.window;
  if (seq_gt(h.ack, snd_nxt_)) return;  // acks something we never sent
  if (seq_gt(h.ack, snd_una_)) {
    const std::uint32_t una_before = snd_una_;
    const std::uint32_t acked = h.ack - snd_una_;
    // Pop acked bytes (account for SYN/FIN sequence slots).
    std::uint32_t data_acked = acked;
    if (state_ == State::kFinWait1 || state_ == State::kLastAck ||
        state_ == State::kClosing) {
      if (fin_sent_ && h.ack == snd_nxt_) data_acked -= 1;  // FIN slot
    }
    const auto pop = std::min<std::size_t>(data_acked, send_buf_.size());
    send_buf_.erase(send_buf_.begin(),
                    send_buf_.begin() + static_cast<long>(pop));
    snd_una_ = h.ack;
    // The cumulative ACK point only advances, and never past what was
    // sent — the guards above enforce it today; the audit keeps future
    // edits (wraparound arithmetic is easy to get wrong) honest.
    HIPCLOUD_AUDIT(seq_le(una_before, snd_una_) && seq_le(snd_una_, snd_nxt_),
                   "TCP send sequence space regressed");
    dup_acks_ = 0;
    consecutive_rtos_ = 0;

    if (timing_ && seq_le(timed_seq_ + 1, h.ack)) {
      update_rtt(stack_->loop().now() - timed_sent_at_);
      timing_ = false;
    }

    if (in_fast_recovery_) {
      if (seq_le(recover_, h.ack)) {
        in_fast_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // Partial ack: retransmit next hole immediately.
        const auto chunk = std::min<std::size_t>(mss_, send_buf_.size());
        if (chunk > 0) {
          Bytes d(send_buf_.begin(),
                  send_buf_.begin() + static_cast<long>(chunk));
          send_segment(snd_una_, d, false, false, true);
          ++retransmissions_;
        }
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<std::uint32_t>(mss_);  // slow start
    } else {
      // Congestion avoidance: ~1 MSS per RTT.
      cwnd_ += static_cast<std::uint32_t>(
          std::max<std::size_t>(1, mss_ * mss_ / std::max(1u, cwnd_)));
    }

    if (flight_size() == 0) {
      cancel_rto();
    } else {
      arm_rto();
    }

    // FIN acknowledged?
    if (fin_sent_ && h.ack == snd_nxt_) {
      if (state_ == State::kFinWait1) {
        state_ = State::kFinWait2;
      } else if (state_ == State::kLastAck) {
        become_closed();
        return;
      } else if (state_ == State::kClosing) {
        enter_time_wait();
        return;
      }
    }
    try_send();
  } else if (h.ack == snd_una_ && flight_size() > 0) {
    // Duplicate ACK.
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_fast_recovery_) {
      in_fast_recovery_ = true;
      recover_ = snd_nxt_;
      ssthresh_ = std::max<std::uint32_t>(
          flight_size() / 2, 2 * static_cast<std::uint32_t>(mss_));
      cwnd_ = ssthresh_ + 3 * static_cast<std::uint32_t>(mss_);
      const auto chunk = std::min<std::size_t>(mss_, send_buf_.size());
      if (chunk > 0) {
        Bytes d(send_buf_.begin(),
                send_buf_.begin() + static_cast<long>(chunk));
        send_segment(snd_una_, d, false, false, true);
        ++retransmissions_;
        timing_ = false;
      }
    } else if (in_fast_recovery_) {
      cwnd_ += static_cast<std::uint32_t>(mss_);
      try_send();
    }
  }
}

// hipcheck:hot
void TcpConnection::process_data(const TcpHeader& h, crypto::Buffer data) {
  const std::uint32_t rcv_nxt_before = rcv_nxt_;
  const std::uint32_t seg_seq = h.seq;
  if (h.fin) {
    peer_fin_seq_valid_ = true;
    peer_fin_seq_ = seg_seq + static_cast<std::uint32_t>(data.size());
  }
  if (!data.empty()) {
    if (seq_le(seg_seq, rcv_nxt_)) {
      // In-order (possibly with overlap).
      const std::uint32_t overlap = rcv_nxt_ - seg_seq;
      if (overlap < data.size()) {
        // Strip the overlap in place and hand the buffer through — the
        // common overlap==0 case moves the segment with zero copies.
        data.pop_front(overlap);
        rcv_nxt_ += static_cast<std::uint32_t>(data.size());
        bytes_received_ += data.size();
        if (on_data_) on_data_(std::move(data));
        // Drain contiguous reassembly segments.
        for (auto it = reassembly_.begin(); it != reassembly_.end();) {
          if (seq_gt(it->first, rcv_nxt_)) break;
          const std::uint32_t ov = rcv_nxt_ - it->first;
          if (ov < it->second.size()) {
            crypto::Buffer more = std::move(it->second);
            more.pop_front(ov);
            rcv_nxt_ += static_cast<std::uint32_t>(more.size());
            bytes_received_ += more.size();
            if (on_data_) on_data_(std::move(more));
          }
          it = reassembly_.erase(it);
        }
      }
    } else {
      // Out of order: stash for later, ack current rcv_nxt_ (dup ack).
      reassembly_.insert_or_assign(seg_seq, std::move(data));
    }
  }

  // Receive-side mirror of the send-side audit: the next-expected
  // pointer is monotone; delivering the same byte range twice (or
  // skipping one) would corrupt the application stream undetectably.
  HIPCLOUD_AUDIT(seq_le(rcv_nxt_before, rcv_nxt_),
                 "TCP receive sequence space regressed");

  // FIN processing once all data before it has arrived.
  if (peer_fin_seq_valid_ && rcv_nxt_ == peer_fin_seq_) {
    rcv_nxt_ = peer_fin_seq_ + 1;
    peer_fin_seq_valid_ = false;
    switch (state_) {
      case State::kEstablished:
        state_ = State::kCloseWait;
        send_ack();
        if (on_close_) on_close_();
        return;
      case State::kFinWait1:
        // Simultaneous close.
        state_ = fin_sent_ && snd_una_ == snd_nxt_ ? State::kTimeWait
                                                   : State::kClosing;
        send_ack();
        if (state_ == State::kTimeWait) enter_time_wait();
        return;
      case State::kFinWait2:
        send_ack();
        enter_time_wait();
        return;
      default:
        send_ack();
        return;
    }
  }
  send_ack();
}

void TcpConnection::enter_time_wait() {
  state_ = State::kTimeWait;
  cancel_rto();
  auto self = weak_from_this();
  stack_->loop().schedule(kTimeWaitDuration, [self] {
    if (const auto conn = self.lock()) conn->become_closed();
  });
  if (on_close_) on_close_();
}

void TcpConnection::become_closed() {
  if (state_ == State::kClosed) return;
  const bool notify = state_ != State::kTimeWait;
  state_ = State::kClosed;
  cancel_rto();
  if (notify && on_close_) on_close_();
  stack_->remove(this);
}

// ---------------------------------------------------------------------------
// TcpStack

TcpStack::TcpStack(Node* node, TcpConfig config)
    : node_(node), config_(config) {
  node_->register_protocol(IpProto::kTcp,
                           [this](Packet&& pkt) { on_packet(std::move(pkt)); });
}

TcpStack::~TcpStack() {
  // Connections still open at teardown hold application callbacks that
  // usually capture the connection's own shared_ptr; break those cycles so
  // the connection table actually frees.
  for (auto& [key, conn] : connections_) conn->drop_handlers();
}

sim::EventLoop& TcpStack::loop() { return node_->network().loop(); }

std::uint16_t TcpStack::ephemeral_port() {
  for (;;) {
    const std::uint16_t port = next_ephemeral_++;
    if (next_ephemeral_ == 0) next_ephemeral_ = 32768;
    bool taken = false;
    for (const auto& [tuple, conn] : connections_) {
      if (tuple.local_port == port) {
        taken = true;
        break;
      }
    }
    if (!taken && !listeners_.count(port)) return port;
  }
}

std::uint32_t TcpStack::random_isn() {
  return static_cast<std::uint32_t>(node_->network().rng().next());
}

std::shared_ptr<TcpConnection> TcpStack::connect(
    const Endpoint& remote, std::optional<IpAddr> src_addr) {
  IpAddr local_addr;
  if (src_addr) {
    local_addr = *src_addr;
  } else {
    const auto selected = node_->select_source(remote.addr);
    if (!selected) {
      throw std::runtime_error("TcpStack::connect: no source address on " +
                               node_->name() + " for " +
                               remote.addr.to_string());
    }
    local_addr = *selected;
  }
  const Endpoint local{local_addr, ephemeral_port()};
  auto conn = std::shared_ptr<TcpConnection>(
      // hipcheck:allow(raw-alloc): private ctor blocks make_shared; the shared_ptr owns it
      new TcpConnection(this, local, remote, config_));
  connections_[FourTuple{local.addr, local.port, remote.addr, remote.port}] =
      conn;
  conn->start_connect();
  return conn;
}

void TcpStack::listen(std::uint16_t port, AcceptFn on_accept) {
  if (listeners_.count(port)) {
    throw std::runtime_error("TcpStack: port already listening");
  }
  listeners_[port] = std::move(on_accept);
}

void TcpStack::close_listener(std::uint16_t port) { listeners_.erase(port); }

// hipcheck:hot
void TcpStack::transmit(const Endpoint& local, const Endpoint& remote,
                        const TcpHeader& header, BytesView data) {
  Packet pkt;
  pkt.src = local.addr;
  pkt.dst = remote.addr;
  pkt.proto = IpProto::kTcp;
  // Pooled buffer with headroom for ESP/encap/Teredo prepends downstream
  // and tailroom for ICV + cipher padding — the whole secure path then
  // works in place on this one allocation.
  crypto::Buffer buf = node_->network().buffer_pool().make(
      TcpHeader::kSize + data.size(), /*headroom=*/96, /*tailroom=*/32);
  header.write(buf.data());
  if (!data.empty()) {
    std::memcpy(buf.data() + TcpHeader::kSize, data.data(), data.size());
  }
  pkt.payload = std::move(buf);
  pkt.stamp_l3_overhead();
  node_->send(std::move(pkt));
}

// hipcheck:hot
void TcpStack::on_packet(Packet&& pkt) {
  TcpHeader h;
  try {
    h = TcpHeader::parse_header(pkt.payload.view());
  } catch (const std::runtime_error&) {
    return;
  }
  pkt.payload.pop_front(TcpHeader::kSize);
  const FourTuple key{pkt.dst, h.dst_port, pkt.src, h.src_port};
  const auto it = connections_.find(key);
  if (it != connections_.end()) {
    // Hold a strong ref: handling may close and remove the connection.
    const auto conn = it->second;
    conn->handle_segment(h, std::move(pkt.payload));
    return;
  }
  if (h.syn && !h.ack_flag) {
    const auto lit = listeners_.find(h.dst_port);
    if (lit == listeners_.end()) return;  // no RST: keep the sim quiet
    const Endpoint local{pkt.dst, h.dst_port};
    const Endpoint remote{pkt.src, h.src_port};
    auto conn = std::shared_ptr<TcpConnection>(
        // hipcheck:allow(raw-alloc): private ctor blocks make_shared; the shared_ptr owns it
        new TcpConnection(this, local, remote, config_));
    connections_[key] = conn;
    conn->start_accept(h);
    lit->second(conn);
  }
}

void TcpStack::remove(TcpConnection* conn) {
  const FourTuple key{conn->local().addr, conn->local().port,
                      conn->remote().addr, conn->remote().port};
  // Deferred erase: the connection may be deep in its own call stack (the
  // close may have been triggered from inside on_data_), so both the erase
  // and the handler drop — application closures routinely capture the
  // connection's own shared_ptr, a cycle that must be broken for a closed
  // connection to free — wait until the current callback unwinds.
  node_->network().loop().schedule(0, [this, key] {
    const auto it = connections_.find(key);
    if (it == connections_.end()) return;
    it->second->drop_handlers();
    connections_.erase(it);
  });
}

}  // namespace hipcloud::net
