#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <variant>

#include "crypto/bytes.hpp"

namespace hipcloud::net {

/// IPv4 address (host byte order internally).
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
               (std::uint32_t(c) << 8) | std::uint32_t(d)) {}

  static Ipv4Addr parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  /// True for 1.0.0.0/8 — the Local Scope Identifier range HIP hands to
  /// IPv4 applications (RFC 5338 uses 1/8 by HIPL convention).
  constexpr bool is_lsi() const { return (value_ >> 24) == 1; }

  auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv6 address, 16 bytes network order.
class Ipv6Addr {
 public:
  Ipv6Addr() { bytes_.fill(0); }
  explicit Ipv6Addr(const std::array<std::uint8_t, 16>& bytes)
      : bytes_(bytes) {}

  static Ipv6Addr parse(std::string_view text);
  static Ipv6Addr from_bytes(crypto::BytesView data);

  const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }
  std::string to_string() const;

  /// ORCHID prefix 2001:10::/28 marks Host Identity Tags (RFC 4843):
  /// bytes 20 01 00 1x.
  bool is_hit() const {
    return bytes_[0] == 0x20 && bytes_[1] == 0x01 && bytes_[2] == 0x00 &&
           (bytes_[3] & 0xf0) == 0x10;
  }

  /// Teredo prefix 2001:0::/32 (RFC 4380).
  bool is_teredo() const {
    return bytes_[0] == 0x20 && bytes_[1] == 0x01 && bytes_[2] == 0 &&
           bytes_[3] == 0;
  }

  bool is_zero() const {
    for (auto b : bytes_) {
      if (b) return false;
    }
    return true;
  }

  auto operator<=>(const Ipv6Addr&) const = default;

 private:
  std::array<std::uint8_t, 16> bytes_;
};

/// Either family. The protocol stack is address-family agnostic, exactly
/// the property the paper leans on for HIP's IPv4/IPv6 interoperability.
class IpAddr {
 public:
  IpAddr() : addr_(Ipv4Addr()) {}
  IpAddr(Ipv4Addr v4) : addr_(v4) {}  // NOLINT(google-explicit-constructor)
  IpAddr(Ipv6Addr v6) : addr_(v6) {}  // NOLINT(google-explicit-constructor)

  bool is_v4() const { return std::holds_alternative<Ipv4Addr>(addr_); }
  bool is_v6() const { return !is_v4(); }
  Ipv4Addr v4() const { return std::get<Ipv4Addr>(addr_); }
  /// Returned by reference: callers commonly bind `.v6().bytes()`.
  const Ipv6Addr& v6() const { return std::get<Ipv6Addr>(addr_); }

  bool is_hit() const { return is_v6() && v6().is_hit(); }
  bool is_lsi() const { return is_v4() && v4().is_lsi(); }
  bool is_teredo() const { return is_v6() && v6().is_teredo(); }

  std::string to_string() const;

  auto operator<=>(const IpAddr&) const = default;

 private:
  std::variant<Ipv4Addr, Ipv6Addr> addr_;
};

/// Transport endpoint: address + port.
struct Endpoint {
  IpAddr addr;
  std::uint16_t port = 0;

  std::string to_string() const;
  auto operator<=>(const Endpoint&) const = default;
};

}  // namespace hipcloud::net
