#include "net/shard_world.hpp"

#include <utility>

#include "sim/check.hpp"
#include "sim/random.hpp"

namespace hipcloud::net {

// hipcheck:seam — the one sanctioned shard crossing in the network layer:
// the posted callback touches only by-value copies (twin/node pointers
// resolve on the destination shard; the payload is re-staged pool-free).
void CrossLinkHalf::schedule_delivery(sim::Time arrival, Node* to,
                                      Packet pkt) {
  // The payload may sit in a pooled block owned by the sending shard's
  // BufferPool; pools are single-threaded, so the block must not cross
  // the seam (the destination would run its destructor and push it onto
  // a foreign freelist). Stage a pool-free copy here, on the sending
  // thread, preserving the head/tailroom window so the receive path can
  // still grow headers in place. The copy is charged to the sending
  // shard — it is the real cost of the shard seam and shows up in every
  // BENCH json as payload_bytes_copied.
  crypto::Buffer staged(pkt.payload.view(), pkt.payload.headroom(),
                        pkt.payload.tailroom());
  network().perf().payload_bytes_copied += pkt.payload.size();
  pkt.payload = std::move(staged);
  CrossLinkHalf* twin = twin_;
  HIPCLOUD_CHECK(twin != nullptr, "cross-shard half-link has no twin");
  coord_.post(src_shard_, dst_shard_, arrival,
              [to, twin, p = std::move(pkt)]() mutable {
                std::size_t iface = 0;
                for (std::size_t i = 0; i < to->interface_count(); ++i) {
                  if (to->link_at(i) == twin) {
                    iface = i;
                    break;
                  }
                }
                to->deliver(std::move(p), iface);
              });
}

ShardedWorld::ShardedWorld(std::size_t shards, std::uint64_t seed) {
  HIPCLOUD_CHECK(shards > 0, "a sharded world needs at least one shard");
  sim::SplitMix64 seeder(seed);
  nets_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    nets_.push_back(std::make_unique<Network>(seeder.next()));
    coord_.add_shard(&nets_.back()->loop());
  }
  // Every cross-shard post this world issues rides a CrossLinkHalf whose
  // seam is registered below, so unregistered pairs carry no traffic and
  // must not constrain anyone's horizon.
  coord_.set_registered_pairs_only(true);
}

ShardedWorld::CrossAttachment ShardedWorld::connect_cross(
    std::size_t shard_a, Node* a, std::size_t shard_b, Node* b,
    const LinkConfig& config) {
  HIPCLOUD_CHECK(shard_a < nets_.size() && shard_b < nets_.size(),
                 "connect_cross outside the world");
  HIPCLOUD_CHECK(shard_a != shard_b,
                 "connect_cross within one shard: use Network::connect");
  HIPCLOUD_CHECK(config.latency > 0,
                 "cross-shard links need positive latency (lookahead)");
  auto ab = std::make_unique<CrossLinkHalf>(coord_, shard_a, shard_b,
                                            *nets_[shard_a], a, b, config);
  auto ba = std::make_unique<CrossLinkHalf>(coord_, shard_b, shard_a,
                                            *nets_[shard_b], b, a, config);
  ab->set_twin(ba.get());
  ba->set_twin(ab.get());
  CrossAttachment att;
  att.a_to_b = ab.get();
  att.b_to_a = ba.get();
  att.iface_a = a->attach_link(ab.get());
  att.iface_b = b->attach_link(ba.get());
  cross_links_.push_back(std::move(ab));
  cross_links_.push_back(std::move(ba));
  // The seam's channel lookahead, both directions: a delivery can leave
  // no earlier than `latency` after the instant the sender commits the
  // transmit, so the coordinator may stride each receiver past every
  // remote clock by its own seam's minimum. Shrink-only: adding a faster
  // link mid-build (or between runs) tightens just this pair.
  coord_.register_pair_lookahead(shard_a, shard_b, config.latency);
  coord_.register_pair_lookahead(shard_b, shard_a, config.latency);
  // Keep the legacy global view in sync: lookahead() still reports the
  // smallest cross-shard latency anywhere (the global-min ablation's
  // epoch length and the bound on any not-yet-registered seam).
  if (min_cross_latency_ < 0 || config.latency < min_cross_latency_) {
    min_cross_latency_ = config.latency;
    coord_.set_lookahead(min_cross_latency_);
  }
  return att;
}

std::size_t ShardedWorld::run(sim::Time until, unsigned workers) {
  return coord_.run(until, workers);
}

}  // namespace hipcloud::net
