#pragma once

#include <cstdint>
#include <string>

#include "crypto/buffer.hpp"
#include "crypto/bytes.hpp"
#include "net/address.hpp"

namespace hipcloud::net {

/// IP protocol numbers used by the stack.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kEsp = 50,
  kIcmpV6 = 58,
  kHip = 139,
};

/// One IP datagram in flight. Headers are kept structured (src/dst/proto/
/// ttl) while everything above L3 is real serialized bytes in `payload` —
/// ESP ciphertext, TCP segments, UDP datagrams. `header_overhead` carries
/// the L3(+encapsulation) byte count so links charge realistic
/// serialization delay without us re-serializing IP headers at every hop.
struct Packet {
  IpAddr src;
  IpAddr dst;
  IpProto proto = IpProto::kUdp;
  std::uint8_t ttl = 64;
  /// Pooled headroom buffer: encapsulation layers prepend/append headers
  /// in place instead of reallocating (see crypto::Buffer).
  crypto::Buffer payload;
  /// L3 header bytes: 20 for IPv4, 40 for IPv6, plus any outer
  /// encapsulation already applied (e.g. Teredo's outer IPv4+UDP).
  std::size_t header_overhead = 0;

  /// Total bytes this packet occupies on a wire.
  std::size_t wire_size() const { return header_overhead + payload.size(); }

  /// Set header_overhead from the destination's address family.
  void stamp_l3_overhead() { header_overhead = dst.is_v4() ? 20 : 40; }

  std::string describe() const;
};

/// Serialize a v6 packet into a full 40-byte IPv6 header + payload —
/// used when a packet must travel as bytes inside another packet
/// (Teredo encapsulation). Throws if src/dst are not both IPv6.
crypto::Bytes serialize_ipv6(const Packet& pkt);

/// Inverse of serialize_ipv6. Throws std::runtime_error on malformed input.
Packet parse_ipv6(crypto::BytesView wire);

/// Zero-copy variants for the Teredo datapath: prepend the 40-byte IPv6
/// header into the packet's own payload buffer (consuming the packet) /
/// strip it off the wire buffer and move the remainder into the returned
/// packet's payload.
crypto::Buffer serialize_ipv6_in_place(Packet&& pkt);
Packet parse_ipv6_in_place(crypto::Buffer&& wire);

/// UDP datagram view: ports + payload serialized as
/// src_port(2) | dst_port(2) | length(2) | checksum(2, zero) | data.
struct UdpSegment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  crypto::Bytes data;

  static constexpr std::size_t kHeaderSize = 8;

  crypto::Bytes serialize() const;
  static UdpSegment parse(crypto::BytesView wire);
};

/// ICMP echo (request/reply) used by the ping tool; same shape reused for
/// ICMPv6 echo.
struct IcmpEcho {
  bool is_reply = false;
  std::uint16_t ident = 0;
  std::uint16_t seq = 0;
  crypto::Bytes data;

  static constexpr std::size_t kHeaderSize = 8;

  crypto::Bytes serialize() const;
  static IcmpEcho parse(crypto::BytesView wire);
};

}  // namespace hipcloud::net
