#include "net/icmp.hpp"

#include <stdexcept>

#include "sim/log.hpp"

namespace hipcloud::net {

namespace {
constexpr sim::Duration kProbeTimeout = 2 * sim::kSecond;
}

IcmpStack::IcmpStack(Node* node) : node_(node) {
  const auto handler = [this](Packet&& pkt) { on_packet(std::move(pkt)); };
  node_->register_protocol(IpProto::kIcmp, handler);
  node_->register_protocol(IpProto::kIcmpV6, handler);
}

void IcmpStack::ping(const IpAddr& dst, int count, sim::Duration interval,
                     std::size_t payload_size, DoneFn done) {
  const std::uint16_t ident = next_ident_++;
  Session& session = sessions_[ident];
  session.dst = dst;
  session.total = count;
  session.outstanding = count;
  session.done = std::move(done);

  auto& loop = node_->network().loop();
  for (int i = 0; i < count; ++i) {
    const auto seq = static_cast<std::uint16_t>(i + 1);
    loop.schedule(interval * i, [this, ident, seq, dst, payload_size] {
      auto it = sessions_.find(ident);
      if (it == sessions_.end()) return;
      Session& s = it->second;
      s.probes[seq] = Probe{node_->network().loop().now(), false};

      IcmpEcho echo;
      echo.is_reply = false;
      echo.ident = ident;
      echo.seq = seq;
      echo.data.assign(payload_size, 0xa5);

      Packet pkt;
      pkt.dst = dst;
      const auto src = node_->select_source(dst);
      if (!src) {
        HIPCLOUD_LOG(sim::LogLevel::kWarn,
                      node_->network().loop().now(), "icmp",
                      node_->name() + ": no source for ping");
        s.probes[seq].answered = true;  // consumed as lost
        ++s.lost;
        --s.outstanding;
        finish_if_complete(ident);
        return;
      }
      pkt.src = *src;
      pkt.proto = proto_for(dst);
      pkt.payload = echo.serialize();
      pkt.stamp_l3_overhead();
      node_->send(std::move(pkt));

      // Per-probe timeout.
      node_->network().loop().schedule(kProbeTimeout, [this, ident, seq] {
        auto sit = sessions_.find(ident);
        if (sit == sessions_.end()) return;
        Session& sess = sit->second;
        const auto pit = sess.probes.find(seq);
        if (pit != sess.probes.end() && !pit->second.answered) {
          pit->second.answered = true;  // consumed as lost
          ++sess.lost;
          --sess.outstanding;
          finish_if_complete(ident);
        }
      });
    });
  }
}

// hipcheck:wire_input
void IcmpStack::on_packet(Packet&& pkt) {
  IcmpEcho echo;
  try {
    echo = IcmpEcho::parse(pkt.payload);
  } catch (const std::runtime_error&) {
    return;
  }
  if (!echo.is_reply) {
    // Responder side: bounce the payload back.
    IcmpEcho reply = echo;
    reply.is_reply = true;
    Packet out;
    out.dst = pkt.src;
    out.src = pkt.dst;  // reply from the address that was pinged
    out.proto = proto_for(pkt.src);
    out.payload = reply.serialize();
    out.stamp_l3_overhead();
    node_->send(std::move(out));
    return;
  }
  // Client side: match to a session probe.
  const auto it = sessions_.find(echo.ident);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  const auto pit = session.probes.find(echo.seq);
  if (pit == session.probes.end() || pit->second.answered) return;
  pit->second.answered = true;
  const sim::Duration rtt =
      node_->network().loop().now() - pit->second.sent_at;
  session.rtts.add(sim::to_millis(rtt));
  --session.outstanding;
  finish_if_complete(echo.ident);
}

void IcmpStack::finish_if_complete(std::uint16_t ident) {
  const auto it = sessions_.find(ident);
  if (it == sessions_.end() || it->second.outstanding > 0) return;
  Session session = std::move(it->second);
  sessions_.erase(it);
  if (session.done) session.done(session.rtts, session.lost);
}

}  // namespace hipcloud::net
