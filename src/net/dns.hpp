#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/node.hpp"
#include "net/udp.hpp"

namespace hipcloud::net {

constexpr std::uint16_t kDnsPort = 53;

/// Record types the simulator's DNS understands. HIP records (RFC 5205)
/// carry a Host Identity Tag plus the full Host Identity public key and
/// are how HIP peers discover each other's identities dynamically.
enum class DnsType : std::uint8_t {
  kA = 1,
  kAaaa = 28,
  kHip = 55,
};

struct DnsRecord {
  DnsType type;
  crypto::Bytes data;  // A: 4 bytes; AAAA: 16 bytes; HIP: HIT(16) | HI

  static DnsRecord a(Ipv4Addr addr);
  static DnsRecord aaaa(const Ipv6Addr& addr);
  static DnsRecord hip(const Ipv6Addr& hit, crypto::BytesView host_identity);

  Ipv4Addr as_a() const;
  Ipv6Addr as_aaaa() const;
  Ipv6Addr hip_hit() const;
  crypto::Bytes hip_host_identity() const;
};

/// Authoritative DNS server over simulated UDP. The paper's deployment
/// keeps HIP records in DNS (Bind supports them); here the cloud
/// provider publishes VM HITs the same way.
class DnsServer {
 public:
  DnsServer(Node* node, UdpStack* udp);

  void add_record(const std::string& name, DnsRecord record);
  void remove_records(const std::string& name, DnsType type);
  std::size_t record_count() const;

 private:
  void on_query(const Endpoint& from, crypto::Bytes data);

  Node* node_;
  UdpStack* udp_;
  std::map<std::string, std::vector<DnsRecord>> zone_;
};

/// Stub resolver: fire a query, get records (empty vector = NXDOMAIN or
/// timeout after 2s).
class DnsResolver {
 public:
  using ResultFn = std::function<void(std::vector<DnsRecord>)>;

  DnsResolver(Node* node, UdpStack* udp, Endpoint server);

  void query(const std::string& name, DnsType type, ResultFn done);

 private:
  void on_response(crypto::Bytes data);

  Node* node_;
  UdpStack* udp_;
  Endpoint server_;
  std::uint16_t port_ = 0;
  std::uint16_t next_id_ = 1;
  struct Pending {
    ResultFn done;
    sim::EventHandle timeout;
  };
  std::map<std::uint16_t, Pending> pending_;
};

}  // namespace hipcloud::net
