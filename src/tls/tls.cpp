#include "tls/tls.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "net/wire_reader.hpp"
#include "sim/log.hpp"

namespace hipcloud::tls {

using crypto::Bytes;
using crypto::BytesView;

namespace {
constexpr std::uint8_t kRecordHandshake = 22;
constexpr std::uint8_t kRecordApplication = 23;
constexpr std::uint8_t kRecordAlert = 21;

constexpr std::uint8_t kHsClientHello = 1;
constexpr std::uint8_t kHsServerHello = 2;
constexpr std::uint8_t kHsClientKeyExchange = 16;
constexpr std::uint8_t kHsFinished = 20;

constexpr std::size_t kMacLen = 16;

// Hard ceiling on the claimed record length. Without it, a peer that sends a
// 4-byte header claiming a multi-megabyte body makes us buffer the connection
// bytes forever waiting for a record that never completes. Far above any
// legitimate record (largest app payloads are a few KiB).
constexpr std::size_t kMaxRecordLen = 1 << 20;

void store_be64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * (7 - i)));
  }
}
}  // namespace

std::shared_ptr<TlsSession> TlsSession::client(
    std::shared_ptr<net::TcpConnection> conn, net::Node* node,
    TlsConfig config, std::uint64_t seed) {
  auto session = std::shared_ptr<TlsSession>(new TlsSession(
      std::move(conn), node, std::move(config), /*is_client=*/true, seed));
  session->start();
  return session;
}

std::shared_ptr<TlsSession> TlsSession::server(
    std::shared_ptr<net::TcpConnection> conn, net::Node* node,
    TlsConfig config, std::uint64_t seed) {
  auto session = std::shared_ptr<TlsSession>(new TlsSession(
      std::move(conn), node, std::move(config), /*is_client=*/false, seed));
  session->start();
  return session;
}

TlsSession::TlsSession(std::shared_ptr<net::TcpConnection> conn,
                       net::Node* node, TlsConfig config, bool is_client,
                       std::uint64_t seed)
    : conn_(std::move(conn)), node_(node), config_(std::move(config)),
      is_client_(is_client), drbg_(seed, "tls:" + node->name()) {}

void TlsSession::charge(double cycles, std::function<void()> then) {
  node_->cpu().run(cycles, std::move(then));
}

void TlsSession::start() {
  auto self = shared_from_this();
  conn_->on_data([self](Bytes chunk) { self->on_tcp_data(std::move(chunk)); });
  conn_->on_close([self] {
    if (self->state_ != State::kClosed) {
      self->state_ = State::kClosed;
      if (self->on_close_) self->on_close_();
    }
  });

  const auto begin = [self] {
    self->handshake_start_ = self->node_->network().loop().now();
    if (self->is_client_) {
      self->client_random_ = self->drbg_.generate(32);
      Bytes hello{kHsClientHello};
      hello.insert(hello.end(), self->client_random_.begin(),
                   self->client_random_.end());
      self->transcript_.insert(self->transcript_.end(), hello.begin(),
                               hello.end());
      self->send_record(kRecordHandshake, hello, /*encrypted=*/false);
      self->state_ = State::kHelloSent;
    } else {
      self->state_ = State::kWaitHello;
    }
  };
  if (conn_->established()) {
    begin();
  } else {
    conn_->on_connect(begin);
  }
}

void TlsSession::send(Bytes data) {
  if (state_ == State::kEstablished) {
    charge(config_.costs.tls_record_cycles(data.size()),
           [self = shared_from_this(), d = std::move(data)] {
             if (self->state_ != State::kEstablished) return;
             self->send_record(kRecordApplication, d, /*encrypted=*/true);
           });
    return;
  }
  if (state_ == State::kClosed || state_ == State::kError) return;
  pending_sends_.push_back(std::move(data));
}

void TlsSession::close() {
  if (state_ == State::kEstablished) {
    send_record(kRecordAlert, Bytes{0}, /*encrypted=*/true);
  }
  state_ = State::kClosed;
  conn_->close();
}

void TlsSession::fail(const char* reason) {
  HIPCLOUD_LOG(sim::LogLevel::kWarn, node_->network().loop().now(), "tls",
                node_->name() + ": handshake failed: " + reason);
  state_ = State::kError;
  conn_->reset();
  if (on_close_) on_close_();
}

void TlsSession::send_record(std::uint8_t type, BytesView body,
                             bool encrypted) {
  // Single-buffer record build: header, body encrypted in place (nonce from
  // the record sequence number), then the streamed MAC over
  // type|seq|ciphertext — no payload/mac_input temporaries.
  Bytes record;
  record.reserve(4 + body.size() + (encrypted ? kMacLen : 0));
  record.push_back(type);
  crypto::append_be(record, body.size() + (encrypted ? kMacLen : 0), 3);
  record.insert(record.end(), body.begin(), body.end());
  if (encrypted) {
    std::uint8_t seq_be[8];
    store_be64(seq_be, seq_out_);
    std::uint8_t nonce[12] = {};
    std::memcpy(nonce + 4, seq_be, 8);
    enc_out_->ctr_xor(nonce, 1, record.data() + 4, body.size());
    mac_out_->reset();
    mac_out_->update(BytesView(&type, 1));
    mac_out_->update(BytesView(seq_be, 8));
    mac_out_->update(BytesView(record.data() + 4, body.size()));
    std::uint8_t mac[crypto::HmacSha256::kDigestSize];
    mac_out_->finish(mac);
    record.insert(record.end(), mac, mac + kMacLen);
    ++seq_out_;
  }
  conn_->send(std::move(record));
}

// hipcheck:wire_input
void TlsSession::on_tcp_data(Bytes chunk) {
  recv_buf_.insert(recv_buf_.end(), chunk.begin(), chunk.end());
  pump();
}

void TlsSession::pump() {
  while (!paused_) {
    wire::Reader r(recv_buf_);
    const auto type = r.u8();
    const auto len = r.u24be();
    if (!type || !len) return;  // incomplete record header
    if (*len > kMaxRecordLen) return fail("oversized record");
    const auto body_view = r.bytes(*len);
    if (!body_view) return;  // body not fully arrived yet
    Bytes body(body_view->begin(), body_view->end());
    recv_buf_.erase(recv_buf_.begin(),
                    recv_buf_.begin() + 4 + static_cast<long>(*len));
    process_record(*type, std::move(body));
    if (state_ == State::kError || state_ == State::kClosed) return;
  }
}

// hipcheck:wire_input
void TlsSession::process_record(std::uint8_t type, Bytes body) {
  const bool encrypted_phase =
      enc_in_.has_value() &&
      (type == kRecordApplication || type == kRecordAlert ||
       (type == kRecordHandshake && state_ == State::kWaitFinished));
  if (encrypted_phase) {
    if (body.size() < kMacLen) return fail("short record");
    const std::size_t ct_len = body.size() - kMacLen;
    std::uint8_t seq_be[8];
    store_be64(seq_be, seq_in_);
    mac_in_->reset();
    mac_in_->update(BytesView(&type, 1));
    mac_in_->update(BytesView(seq_be, 8));
    mac_in_->update(BytesView(body.data(), ct_len));
    std::uint8_t expected[crypto::HmacSha256::kDigestSize];
    mac_in_->finish(expected);
    if (!crypto::ct_equal(BytesView(body).subspan(ct_len),
                          BytesView(expected, kMacLen))) {
      return fail("bad record MAC");
    }
    body.resize(ct_len);
    std::uint8_t nonce[12] = {};
    std::memcpy(nonce + 4, seq_be, 8);
    enc_in_->ctr_xor(nonce, 1, body.data(), ct_len);
    ++seq_in_;
  }

  switch (type) {
    case kRecordHandshake:
      handle_handshake(std::move(body));
      break;
    case kRecordApplication: {
      if (state_ != State::kEstablished) return fail("early app data");
      charge(config_.costs.tls_record_cycles(body.size()),
             [self = shared_from_this(), b = std::move(body)]() mutable {
               if (self->on_data_) self->on_data_(std::move(b));
             });
      break;
    }
    case kRecordAlert:
      state_ = State::kClosed;
      conn_->close();
      if (on_close_) on_close_();
      break;
    default:
      fail("unknown record type");
  }
}

void TlsSession::derive_keys() {
  Bytes salt = client_random_;
  salt.insert(salt.end(), server_random_.begin(), server_random_.end());
  master_ = crypto::hkdf_extract(salt, premaster_);
  const Bytes block =
      crypto::hkdf_expand(master_, crypto::to_bytes("key expansion"), 4 * 32);
  auto slice = [&block](int i) {
    return Bytes(block.begin() + i * 32, block.begin() + (i + 1) * 32);
  };
  const Bytes client_enc = slice(0), client_mac = slice(1);
  const Bytes server_enc = slice(2), server_mac = slice(3);
  if (is_client_) {
    enc_out_.emplace(BytesView(client_enc).subspan(0, 16));
    mac_out_.emplace(client_mac);
    enc_in_.emplace(BytesView(server_enc).subspan(0, 16));
    mac_in_.emplace(server_mac);
  } else {
    enc_out_.emplace(BytesView(server_enc).subspan(0, 16));
    mac_out_.emplace(server_mac);
    enc_in_.emplace(BytesView(client_enc).subspan(0, 16));
    mac_in_.emplace(client_mac);
  }
}

crypto::Bytes TlsSession::finished_mac(bool client_side) const {
  const Bytes label = crypto::to_bytes(client_side ? "client finished"
                                                   : "server finished");
  Bytes input = label;
  const Bytes digest = crypto::Sha256::digest(transcript_);
  input.insert(input.end(), digest.begin(), digest.end());
  return crypto::hmac_sha256(master_, input);
}

void TlsSession::finish_handshake() {
  state_ = State::kEstablished;
  handshake_latency_ = node_->network().loop().now() - handshake_start_;
  if (on_established_) on_established_();
  while (!pending_sends_.empty()) {
    Bytes data = std::move(pending_sends_.front());
    pending_sends_.pop_front();
    send(std::move(data));
  }
}

// hipcheck:wire_input
void TlsSession::handle_handshake(Bytes body) {
  wire::Reader r(body);
  const auto msg_type = r.u8();
  if (!msg_type) return fail("empty handshake");

  switch (*msg_type) {
    case kHsClientHello: {
      if (is_client_ || state_ != State::kWaitHello) return fail("bad hello");
      const auto rnd = r.bytes(32);
      if (!rnd || r.remaining() != 0) return fail("malformed ClientHello");
      client_random_.assign(rnd->begin(), rnd->end());
      transcript_.insert(transcript_.end(), body.begin(), body.end());
      if (!config_.certificate || !config_.private_key) {
        return fail("server has no certificate");
      }
      server_random_ = drbg_.generate(32);
      Bytes hello{kHsServerHello};
      hello.insert(hello.end(), server_random_.begin(), server_random_.end());
      const Bytes cert = config_.certificate->encode();
      crypto::append_be(hello, cert.size(), 2);
      hello.insert(hello.end(), cert.begin(), cert.end());
      transcript_.insert(transcript_.end(), hello.begin(), hello.end());
      send_record(kRecordHandshake, hello, false);
      state_ = State::kWaitKeyEx;
      break;
    }
    case kHsServerHello: {
      if (!is_client_ || state_ != State::kHelloSent) return fail("bad hello");
      const auto rnd = r.bytes(32);
      const auto cert_len = r.u16be();
      if (!rnd || !cert_len) return fail("malformed ServerHello");
      const auto cert_bytes = r.bytes(*cert_len);
      if (!cert_bytes) return fail("malformed certificate");
      server_random_.assign(rnd->begin(), rnd->end());
      Certificate cert;
      try {
        cert = Certificate::decode(*cert_bytes);
      } catch (const std::runtime_error&) {
        return fail("unparseable certificate");
      }
      transcript_.insert(transcript_.end(), body.begin(), body.end());

      // Verify the certificate chain, then do the RSA key transport —
      // the client's expensive steps, charged to its CPU.
      if (config_.ca_public_key &&
          !CertificateAuthority::verify(*config_.ca_public_key, cert)) {
        return fail("certificate verification failed");
      }
      premaster_ = drbg_.generate(48);
      crypto::RsaPublicKey server_key;
      try {
        server_key = cert.rsa();
      } catch (const std::runtime_error&) {
        return fail("bad server key");
      }
      const std::size_t server_bits = server_key.n.bit_length();
      const double cycles =
          config_.costs.rsa_verify_cycles(1024) +  // cert signature check
          config_.costs.rsa_verify_cycles(server_bits);  // RSA encrypt
      paused_ = true;
      charge(cycles, [self = shared_from_this(), server_key] {
        self->paused_ = false;
        if (self->state_ != State::kHelloSent) return;
        Bytes keyex{kHsClientKeyExchange};
        const Bytes encrypted = crypto::rsa_encrypt_pkcs1(
            server_key, self->drbg_, self->premaster_);
        crypto::append_be(keyex, encrypted.size(), 2);
        keyex.insert(keyex.end(), encrypted.begin(), encrypted.end());
        self->transcript_.insert(self->transcript_.end(), keyex.begin(),
                                 keyex.end());
        self->send_record(kRecordHandshake, keyex, false);
        self->derive_keys();
        const Bytes finished_body = [&] {
          Bytes fin{kHsFinished};
          const Bytes mac = self->finished_mac(/*client_side=*/true);
          fin.insert(fin.end(), mac.begin(), mac.end());
          return fin;
        }();
        self->send_record(kRecordHandshake, finished_body,
                          /*encrypted=*/true);
        // Both sides include the client Finished in the transcript that
        // the server Finished covers.
        self->transcript_.insert(self->transcript_.end(),
                                 finished_body.begin(), finished_body.end());
        self->state_ = State::kWaitFinished;
        self->pump();
      });
      break;
    }
    case kHsClientKeyExchange: {
      if (is_client_ || state_ != State::kWaitKeyEx) return fail("bad keyex");
      const auto enc_len = r.u16be();
      if (!enc_len) return fail("malformed keyex");
      const auto enc = r.bytes(*enc_len);
      if (!enc) return fail("malformed keyex");
      const Bytes encrypted(enc->begin(), enc->end());
      transcript_.insert(transcript_.end(), body.begin(), body.end());

      // RSA private decryption: the server's expensive step.
      const double cycles = config_.costs.rsa_sign_cycles(
          config_.private_key->n.bit_length());
      paused_ = true;
      charge(cycles, [self = shared_from_this(), encrypted] {
        self->paused_ = false;
        if (self->state_ != State::kWaitKeyEx) return;
        try {
          self->premaster_ =
              crypto::rsa_decrypt_pkcs1(*self->config_.private_key, encrypted);
        } catch (const std::runtime_error&) {
          self->fail("premaster decryption failed");
          return;
        }
        self->derive_keys();
        self->state_ = State::kWaitFinished;
        self->pump();
      });
      break;
    }
    case kHsFinished: {
      if (state_ != State::kWaitFinished) return fail("unexpected finished");
      const Bytes expected = finished_mac(/*client_side=*/!is_client_);
      const auto got_mac = r.bytes(expected.size());
      if (!got_mac || r.remaining() != 0 ||
          !crypto::ct_equal(*got_mac, expected)) {
        return fail("finished MAC mismatch");
      }
      if (is_client_) {
        finish_handshake();
      } else {
        transcript_.insert(transcript_.end(), body.begin(), body.end());
        Bytes fin{kHsFinished};
        const Bytes mac = finished_mac(/*client_side=*/false);
        fin.insert(fin.end(), mac.begin(), mac.end());
        send_record(kRecordHandshake, fin, /*encrypted=*/true);
        finish_handshake();
      }
      break;
    }
    default:
      fail("unknown handshake message");
  }
}

}  // namespace hipcloud::tls
