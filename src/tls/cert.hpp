#pragma once

#include <string>

#include "crypto/bytes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/rsa.hpp"

namespace hipcloud::tls {

/// Minimal X.509-like certificate: a subject name bound to an RSA public
/// key by a CA signature. Enough structure for the SSL baseline the paper
/// compares HIP against (stunnel/OpenVPN-style deployments).
struct Certificate {
  std::string subject;
  crypto::Bytes public_key;  // RsaPublicKey::encode()
  std::string issuer;
  crypto::Bytes signature;   // CA signature over subject|issuer|public_key

  crypto::Bytes tbs() const;  // "to be signed" bytes
  crypto::Bytes encode() const;
  static Certificate decode(crypto::BytesView wire);

  crypto::RsaPublicKey rsa() const {
    return crypto::RsaPublicKey::decode(public_key);
  }
};

/// Certificate authority: issues and verifies certificates.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, crypto::HmacDrbg& drbg,
                       std::size_t bits = 1024);

  const std::string& name() const { return name_; }
  const crypto::RsaPublicKey& public_key() const { return key_.pub; }

  Certificate issue(const std::string& subject,
                    const crypto::RsaPublicKey& key) const;

  static bool verify(const crypto::RsaPublicKey& ca_key,
                     const Certificate& cert);

 private:
  std::string name_;
  crypto::RsaKeyPair key_;
};

}  // namespace hipcloud::tls
