#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "crypto/aes.hpp"
#include "crypto/cost_model.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "net/tcp.hpp"
#include "tls/cert.hpp"

namespace hipcloud::tls {

/// Per-endpoint TLS configuration.
struct TlsConfig {
  /// Server certificate + key (servers only).
  std::optional<Certificate> certificate;
  std::optional<crypto::RsaPrivateKey> private_key;
  /// CA key used by clients to validate the server certificate.
  std::optional<crypto::RsaPublicKey> ca_public_key;
  /// Virtual-time crypto costs charged to the node CPU.
  crypto::CostModel costs;
};

/// TLS-1.2-style session over a simulated TCP connection: RSA key
/// transport handshake, then an AES-CTR + HMAC-SHA256 record layer. This
/// is the "SSL scenario" baseline of the paper's evaluation — the same
/// asymmetric-handshake + symmetric-records cost structure as HIP+ESP.
///
/// Handshake: ClientHello(random) -> ServerHello(random, certificate) ->
/// ClientKeyExchange(RSA-encrypted premaster) + Finished -> Finished.
class TlsSession : public std::enable_shared_from_this<TlsSession> {
 public:
  using EstablishedFn = std::function<void()>;
  using DataFn = std::function<void(crypto::Bytes)>;
  using CloseFn = std::function<void()>;

  /// Wrap the client side of a connection. Starts the handshake as soon
  /// as the TCP connection is (or becomes) established.
  static std::shared_ptr<TlsSession> client(
      std::shared_ptr<net::TcpConnection> conn, net::Node* node,
      TlsConfig config, std::uint64_t seed);

  /// Wrap the server side of an accepted connection.
  static std::shared_ptr<TlsSession> server(
      std::shared_ptr<net::TcpConnection> conn, net::Node* node,
      TlsConfig config, std::uint64_t seed);

  /// Send application data (queued until the handshake completes).
  void send(crypto::Bytes data);
  void close();

  void on_established(EstablishedFn fn) { on_established_ = std::move(fn); }
  void on_data(DataFn fn) { on_data_ = std::move(fn); }
  void on_close(CloseFn fn) { on_close_ = std::move(fn); }

  bool established() const { return state_ == State::kEstablished; }
  sim::Duration handshake_latency() const { return handshake_latency_; }
  net::TcpConnection* connection() { return conn_.get(); }

  /// Extra bytes the record layer adds per application write.
  static constexpr std::size_t kRecordOverhead = 4 + 8 + 16;  // hdr+seq+mac

 private:
  enum class State {
    kWaitTcp,
    kHelloSent,      // client
    kWaitHello,      // server
    kWaitKeyEx,      // server
    kWaitFinished,   // both
    kEstablished,
    kClosed,
    kError,
  };

  TlsSession(std::shared_ptr<net::TcpConnection> conn, net::Node* node,
             TlsConfig config, bool is_client, std::uint64_t seed);
  void start();
  void on_tcp_data(crypto::Bytes chunk);
  void pump();
  void process_record(std::uint8_t type, crypto::Bytes body);
  void handle_handshake(crypto::Bytes body);
  void send_record(std::uint8_t type, crypto::BytesView body, bool encrypted);
  void derive_keys();
  void finish_handshake();
  void fail(const char* reason);
  crypto::Bytes finished_mac(bool client_side) const;
  void charge(double cycles, std::function<void()> then);

  std::shared_ptr<net::TcpConnection> conn_;
  net::Node* node_;
  TlsConfig config_;
  bool is_client_;
  crypto::HmacDrbg drbg_;
  State state_ = State::kWaitTcp;

  crypto::Bytes recv_buf_;
  /// Record processing pauses while an async CPU charge is rewriting the
  /// handshake state, so records arriving meanwhile are not misparsed.
  bool paused_ = false;
  crypto::Bytes client_random_;
  crypto::Bytes server_random_;
  crypto::Bytes premaster_;
  crypto::Bytes master_;
  crypto::Bytes transcript_;  // running hash input of handshake messages

  // Record protection (absent until keys derived). The MACs are keyed once
  // at derive_keys() and reset per record (no key rehash per packet).
  std::optional<crypto::Aes> enc_out_;
  std::optional<crypto::Aes> enc_in_;
  std::optional<crypto::HmacSha256> mac_out_;
  std::optional<crypto::HmacSha256> mac_in_;
  std::uint64_t seq_out_ = 0;
  std::uint64_t seq_in_ = 0;

  std::deque<crypto::Bytes> pending_sends_;
  sim::Time handshake_start_ = 0;
  sim::Duration handshake_latency_ = 0;

  EstablishedFn on_established_;
  DataFn on_data_;
  CloseFn on_close_;
};

}  // namespace hipcloud::tls
