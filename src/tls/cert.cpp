#include "tls/cert.hpp"

#include <stdexcept>

#include "net/wire_reader.hpp"

namespace hipcloud::tls {

using crypto::append_be;
using crypto::Bytes;
using crypto::BytesView;
using crypto::read_be;

namespace {
void append_blob(Bytes& out, BytesView blob) {
  append_be(out, blob.size(), 2);
  out.insert(out.end(), blob.begin(), blob.end());
}

Bytes read_blob(wire::Reader& r) {
  const auto len = r.u16be();
  if (!len) throw std::runtime_error("cert: truncated");
  const auto blob = r.bytes(*len);
  if (!blob) throw std::runtime_error("cert: truncated");
  return Bytes(blob->begin(), blob->end());
}
}  // namespace

Bytes Certificate::tbs() const {
  Bytes out;
  append_blob(out, crypto::to_bytes(subject));
  append_blob(out, crypto::to_bytes(issuer));
  append_blob(out, public_key);
  return out;
}

Bytes Certificate::encode() const {
  Bytes out = tbs();
  append_blob(out, signature);
  return out;
}

// hipcheck:wire_input
Certificate Certificate::decode(BytesView wire) {
  Certificate cert;
  hipcloud::wire::Reader r(wire);
  const Bytes subject = read_blob(r);
  const Bytes issuer = read_blob(r);
  cert.subject.assign(subject.begin(), subject.end());
  cert.issuer.assign(issuer.begin(), issuer.end());
  cert.public_key = read_blob(r);
  cert.signature = read_blob(r);
  return cert;
}

CertificateAuthority::CertificateAuthority(std::string name,
                                           crypto::HmacDrbg& drbg,
                                           std::size_t bits)
    : name_(std::move(name)), key_(crypto::rsa_generate(drbg, bits)) {}

Certificate CertificateAuthority::issue(const std::string& subject,
                                        const crypto::RsaPublicKey& key) const {
  Certificate cert;
  cert.subject = subject;
  cert.issuer = name_;
  cert.public_key = key.encode();
  cert.signature = crypto::rsa_sign_pkcs1(key_.priv, cert.tbs());
  return cert;
}

bool CertificateAuthority::verify(const crypto::RsaPublicKey& ca_key,
                                  const Certificate& cert) {
  return crypto::rsa_verify_pkcs1(ca_key, cert.tbs(), cert.signature);
}

}  // namespace hipcloud::tls
