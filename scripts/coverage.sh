#!/usr/bin/env bash
# Line-coverage report for the HIP wire codec and ESP datapath — the two
# files whose byte-level branches (parameter parsing, padding, ICV
# handling) are easiest to leave silently untested.
#
#   scripts/coverage.sh                    # report src/hip/wire.cpp + esp.cpp
#   scripts/coverage.sh src/tls/tls.cpp    # any instrumented source file
#
# Builds build-cov/ with -DHIPCLOUD_COVERAGE=ON (gcov instrumentation,
# -O0 so lines map 1:1), runs the tier-1 suite to produce .gcda counts,
# then reports plain `gcov` percentages — no lcov dependency. Exits
# nonzero if a requested file has no coverage data at all.
set -uo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build-cov"
jobs="${CMAKE_BUILD_PARALLEL_LEVEL:-$(nproc 2>/dev/null || echo 2)}"
tjobs="${CTEST_PARALLEL_LEVEL:-$(nproc 2>/dev/null || echo 2)}"

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  files=(src/hip/wire.cpp src/hip/esp.cpp)
fi

if ! command -v gcov >/dev/null 2>&1; then
  echo "coverage: gcov not installed" >&2
  exit 1
fi

echo "== coverage: instrumented build =="
cmake -S "$root" -B "$build" -DCMAKE_BUILD_TYPE=Debug \
  -DHIPCLOUD_COVERAGE=ON >/dev/null || exit 1
cmake --build "$build" -j "$jobs" || exit 1

echo "== coverage: tier-1 test run =="
# Stale counts from a previous run would inflate the numbers.
find "$build" -name '*.gcda' -delete
ctest --test-dir "$build" -LE bench -j "$tjobs" --output-on-failure \
  >/dev/null || exit 1

echo "== coverage: report =="
status=0
for f in "${files[@]}"; do
  # The object dir holding this TU's .gcno/.gcda, e.g.
  # build-cov/src/hip/CMakeFiles/hipcloud_hip.dir/wire.cpp.gcda
  gcda="$(find "$build" -name "$(basename "$f").gcda" | head -n1)"
  if [[ -z "$gcda" ]]; then
    echo "$f: NO COVERAGE DATA (not built or never executed)"
    status=1
    continue
  fi
  # `gcov -n` prints the summary without dropping .gcov files everywhere.
  # Pass the .gcda itself: CMake names the notes file `wire.cpp.gcno`,
  # which the `-o dir + source` form fails to find.
  pct="$(gcov -n "$gcda" 2>/dev/null |
    awk -v src="$f" '
      $0 ~ "^File" { keep = index($0, src) > 0 }
      keep && /^Lines executed:/ {
        sub("Lines executed:", "");
        print;
        exit
      }')"
  if [[ -z "$pct" ]]; then
    echo "$f: gcov produced no summary"
    status=1
  else
    echo "$f: $pct"
  fi
done
exit $status
