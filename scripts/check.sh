#!/usr/bin/env bash
# hipcheck driver: every quality gate the tree ships, one flag per pass.
#
#   scripts/check.sh              # default gates: normal + ASan+UBSan tier-1
#   scripts/check.sh --fast       # normal build only
#   scripts/check.sh --lint       # hipcloud_lint over src/ bench/ tests/ + self-test
#   scripts/check.sh --flow       # hipcloud_flow whole-tree analysis + self-test
#   scripts/check.sh --flow-ipa   # --flow plus the interprocedural gates:
#                                 # cross-TU call-graph determinism at
#                                 # several job counts against the golden
#   scripts/check.sh --flow-wire  # --flow plus the wire-taint gates: the
#                                 # flow-wire-* fixture self-tests and the
#                                 # taint-map determinism dump against its
#                                 # golden at several job counts
#   scripts/check.sh --tidy       # clang-tidy over compile_commands.json
#                                 # (skips, not fails, if clang-tidy absent)
#   scripts/check.sh --audit      # HIPCLOUD_AUDIT=ON build, full tier-1 +
#                                 # audit-trip suite + determinism auditor
#   scripts/check.sh --tsan       # HIPCLOUD_SANITIZE=thread build, tier-1 +
#                                 # the parallel determinism sweep under TSan
#   scripts/check.sh --bench-smoke # build every bench binary and run the
#                                 # `bench`-labeled tests once (no JSON emit),
#                                 # including a no-acceleration env-matrix run
#   scripts/check.sh --scale      # full fig_scale run: the sharded world at
#                                 # 1/2/4/8(+auto) workers across all client
#                                 # scales plus the adaptive-lookahead
#                                 # ablation and the sharded RUBiS curve,
#                                 # regenerating BENCH_scale.json (fails on
#                                 # any worker-count hash mismatch), then the
#                                 # full sharded chaos drill (guest-link
#                                 # flaps masked with zero client errors),
#                                 # regenerating BENCH_shard_chaos.json
#   scripts/check.sh --all        # every pass above
#
# Flags compose (`--lint --tsan` runs exactly those two passes). Every
# pass runs even if an earlier one fails; the exit status is nonzero if
# ANY pass failed. Build parallelism honours CMAKE_BUILD_PARALLEL_LEVEL
# and test parallelism CTEST_PARALLEL_LEVEL (both default to nproc). All
# builds use -DHIPCLOUD_WERROR=ON: the gates are also the warning wall.
set -uo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${CMAKE_BUILD_PARALLEL_LEVEL:-$(nproc 2>/dev/null || echo 2)}"
tjobs="${CTEST_PARALLEL_LEVEL:-$(nproc 2>/dev/null || echo 2)}"

run_normal=0 run_san=0 run_lint=0 run_flow=0 run_flow_ipa=0 \
  run_flow_wire=0 run_tidy=0 run_audit=0 run_tsan=0 run_bench=0 run_scale=0
if [[ $# -eq 0 ]]; then
  run_normal=1 run_san=1
fi
for arg in "$@"; do
  case "$arg" in
    --fast)  run_normal=1 ;;
    --lint)  run_lint=1 ;;
    --flow)  run_flow=1 ;;
    --flow-ipa) run_flow=1 run_flow_ipa=1 ;;
    --flow-wire) run_flow=1 run_flow_wire=1 ;;
    --tidy)  run_tidy=1 ;;
    --audit) run_audit=1 ;;
    --tsan)  run_tsan=1 ;;
    --bench-smoke) run_bench=1 ;;
    --scale) run_scale=1 ;;
    --all)   run_normal=1 run_san=1 run_lint=1 run_flow=1 run_flow_ipa=1 \
             run_flow_wire=1 run_tidy=1 run_audit=1 run_tsan=1 run_bench=1 \
             run_scale=1 ;;
    *)
      echo "usage: $0 [--fast] [--lint] [--flow] [--flow-ipa] [--flow-wire]" \
           "[--tidy] [--audit] [--tsan] [--bench-smoke] [--scale] [--all]" >&2
      exit 2
      ;;
  esac
done

failures=()

# run <pass-name> <cmd...> — runs the command, records the pass name on
# failure, never aborts the script.
run() {
  local name="$1"
  shift
  echo "== $name =="
  if ! "$@"; then
    echo "** FAILED: $name **" >&2
    failures+=("$name")
  fi
}

# configure_build <dir> <extra cmake args...>
configure_build() {
  local dir="$1"
  shift
  cmake -S "$root" -B "$dir" -DHIPCLOUD_WERROR=ON "$@" >/dev/null &&
    cmake --build "$dir" -j "$jobs"
}

if [[ "$run_normal" == 1 ]]; then
  run "tier-1: normal build" \
    configure_build "$root/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  run "tier-1: normal tests" \
    ctest --test-dir "$root/build" -LE bench -j "$tjobs" --output-on-failure
fi

if [[ "$run_lint" == 1 ]]; then
  # The lint pass only needs the linter binary, not the whole tree.
  run "lint: build hipcloud_lint" bash -c \
    "cmake -S '$root' -B '$root/build' -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       -DHIPCLOUD_WERROR=ON >/dev/null &&
     cmake --build '$root/build' -j '$jobs' --target hipcloud_lint"
  run "lint: self-test" \
    "$root/build/tools/hipcloud_lint" --self-test "$root/tools/lint/fixtures"
  run "lint: tree" \
    "$root/build/tools/hipcloud_lint" --root "$root" src bench tests
fi

if [[ "$run_flow" == 1 ]]; then
  # Flow analysis runs after lint (--all order): the cheap token linter
  # catches style debris first, then the TU-level analyzer does the
  # structural work. It needs the exported compile_commands.json, which
  # the configure step below produces as a side effect.
  run "flow: build hipcloud_flow" bash -c \
    "cmake -S '$root' -B '$root/build' -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       -DHIPCLOUD_WERROR=ON >/dev/null &&
     cmake --build '$root/build' -j '$jobs' --target hipcloud_flow"
  run "flow: self-test" \
    "$root/build/tools/hipcloud_flow" --self-test "$root/tools/flow/fixtures"
  run "flow: tree" \
    "$root/build/tools/hipcloud_flow" --root "$root" \
    --compdb "$root/build/compile_commands.json" --jobs "$jobs"
  if [[ "$run_flow_ipa" == 1 ]]; then
    # Interprocedural extras: the linked cross-TU call graph and the
    # resolved wire-taint map must be byte-identical to their goldens at
    # every job count (extraction parallelism must never be observable
    # in the merged summaries).
    run "flow-ipa: call-graph determinism (jobs 1/2/8)" \
      bash "$root/tools/flow/callgraph_determinism_test.sh" \
      "$root/build/tools/hipcloud_flow" \
      "$root/tools/flow/fixtures/callgraph" \
      "$root/tools/flow/fixtures/callgraph/expected_callgraph.txt" \
      "$root/tools/flow/fixtures/wireindex" \
      "$root/tools/flow/fixtures/wireindex/expected_taint.txt"
  fi
  if [[ "$run_flow_wire" == 1 ]]; then
    # Wire-taint extras: the resolved taint map must be byte-identical at
    # every job count (same harness as the call graph), and the baseline
    # must carry zero flow-wire debt — hand-rolled parsers converge onto
    # wire::Reader instead of accumulating quotas.
    run "flow-wire: taint-map determinism (jobs 1/2/8)" \
      bash "$root/tools/flow/callgraph_determinism_test.sh" \
      "$root/build/tools/hipcloud_flow" \
      "$root/tools/flow/fixtures/callgraph" \
      "$root/tools/flow/fixtures/callgraph/expected_callgraph.txt" \
      "$root/tools/flow/fixtures/wireindex" \
      "$root/tools/flow/fixtures/wireindex/expected_taint.txt"
    run "flow-wire: no flow-wire baseline debt" \
      bash -c "! grep -q '^flow-wire' '$root/tools/flow/baseline.flow'"
  fi
fi

if [[ "$run_tidy" == 1 ]]; then
  # clang-tidy is optional tooling: absent in the minimal container, so
  # a missing binary is a SKIP, not a failure. When present it runs over
  # the same compile_commands.json the flow analyzer uses, with the
  # curated profile in .clang-tidy.
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "== tidy: SKIPPED (clang-tidy not installed) =="
  else
    run "tidy: configure (export compile commands)" bash -c \
      "cmake -S '$root' -B '$root/build' -DCMAKE_BUILD_TYPE=RelWithDebInfo \
         -DHIPCLOUD_WERROR=ON >/dev/null"
    run "tidy: clang-tidy" bash -c \
      "cd '$root' && git ls-files 'src/*.cpp' |
         xargs -P '$jobs' -n 8 clang-tidy -p '$root/build' --quiet"
  fi
fi

if [[ "$run_san" == 1 ]]; then
  run "tier-1: ASan+UBSan build" \
    configure_build "$root/build-san" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DHIPCLOUD_SANITIZE=ON
  run "tier-1: ASan+UBSan tests" \
    ctest --test-dir "$root/build-san" -LE bench -j "$tjobs" \
    --output-on-failure
fi

if [[ "$run_audit" == 1 ]]; then
  run "audit: HIPCLOUD_AUDIT=ON build" \
    configure_build "$root/build-audit" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DHIPCLOUD_AUDIT=ON
  # Full tier-1 with audits armed: healthy code must not trip a single
  # invariant, and the audit-trip suite must see every planted
  # regression throw.
  run "audit: tier-1 with invariants armed" \
    ctest --test-dir "$root/build-audit" -LE bench -j "$tjobs" \
    --output-on-failure
  run "audit: determinism auditor (full grid)" \
    "$root/build-audit/bench/audit_determinism"
fi

if [[ "$run_tsan" == 1 ]]; then
  run "tsan: HIPCLOUD_SANITIZE=thread build" \
    configure_build "$root/build-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DHIPCLOUD_SANITIZE=thread
  run "tsan: tier-1" \
    ctest --test-dir "$root/build-tsan" -LE bench -j "$tjobs" \
    --output-on-failure
  # The multi-threaded paths in the tree: the parallel sweep runner, the
  # shard coordinator (cross-shard inboxes, barrier epochs, per-shard
  # logging) and the sweep/logging machinery under them. Tier-1 above
  # already covers the shard unit/fabric tests under TSan; the two
  # auditors below drive both axes at full width.
  run "tsan: parallel determinism sweep" \
    "$root/build-tsan/bench/audit_determinism" --quick
  run "tsan: sharded scaling smoke" \
    "$root/build-tsan/bench/fig_scale" --quick
  run "tsan: sharded chaos smoke" \
    "$root/build-tsan/bench/fig_shard_chaos" --quick
fi

if [[ "$run_bench" == 1 ]]; then
  # Perf smoke: every bench binary must still build, and the
  # `bench`-labeled CTest entries (micro_crypto symmetric filter,
  # micro_sim --quick) must run clean once. No JSON is emitted — this
  # gate catches bit-rot in the bench tree, not perf regressions. A
  # second run with the accelerated crypto backends disabled proves the
  # scalar fallbacks stay healthy on every host.
  run "bench-smoke: build benches" \
    configure_build "$root/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  run "bench-smoke: bench-labeled tests" \
    ctest --test-dir "$root/build" -L bench -j "$tjobs" --output-on-failure
  run "bench-smoke: bench-labeled tests (no SHA-NI / no multi-buffer)" \
    env HIPCLOUD_NO_SHANI=1 HIPCLOUD_NO_SHAMB=1 HIPCLOUD_NO_AESNI=1 \
    ctest --test-dir "$root/build" -L bench -j "$tjobs" --output-on-failure
fi

if [[ "$run_scale" == 1 ]]; then
  # Full scaling curve: regenerates BENCH_scale.json from the normal
  # build and fails on any worker-count hash divergence. Runs from $root
  # so the JSON lands next to the other BENCH_*.json artifacts.
  run "scale: build fig_scale + fig_shard_chaos" bash -c \
    "cmake -S '$root' -B '$root/build' -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       -DHIPCLOUD_WERROR=ON >/dev/null &&
     cmake --build '$root/build' -j '$jobs' --target fig_scale \
       fig_shard_chaos"
  run "scale: sharded scaling curve (full)" bash -c \
    "cd '$root' && '$root/build/bench/fig_scale'"
  run "scale: sharded chaos drill (full)" bash -c \
    "cd '$root' && '$root/build/bench/fig_shard_chaos'"
fi

echo
if [[ ${#failures[@]} -gt 0 ]]; then
  echo "FAILED passes:"
  printf '  - %s\n' "${failures[@]}"
  exit 1
fi
echo "== all green =="
