#!/usr/bin/env bash
# Tier-1 gate: the full non-bench test suite in the normal build, then the
# same suite under ASan+UBSan (-DHIPCLOUD_SANITIZE=ON). Run from anywhere;
# builds land in build/ and build-san/ at the repo root.
#
#   scripts/check.sh            # both passes
#   scripts/check.sh --fast     # normal build only (skip sanitizers)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== tier-1: normal build =="
cmake -S "$root" -B "$root/build" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$root/build" -j "$jobs"
ctest --test-dir "$root/build" -LE bench --output-on-failure

if [[ "$fast" == 1 ]]; then
  echo "== skipping sanitizer pass (--fast) =="
  exit 0
fi

echo "== tier-1: ASan+UBSan build =="
cmake -S "$root" -B "$root/build-san" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHIPCLOUD_SANITIZE=ON >/dev/null
cmake --build "$root/build-san" -j "$jobs"
ctest --test-dir "$root/build-san" -LE bench --output-on-failure

echo "== all green =="
