// DoS-resilience integration (paper §IV-B): under an I1 flood the
// responder's adaptive puzzle slows attackers while legitimate clients
// still get through — the asymmetric-work property end to end.

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "hip/daemon.hpp"
#include "net/udp.hpp"

namespace hipcloud {
namespace {

using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

hip::HostIdentity make_identity(const std::string& name) {
  crypto::HmacDrbg drbg(crypto::to_bytes("dos:" + name));
  return hip::HostIdentity::generate(drbg, hip::HiAlgorithm::kRsa, 1024);
}

TEST(DosResilience, LegitClientConnectsDuringI1Flood) {
  net::Network net(73);
  auto* client = net.add_node("client", 3e9);
  auto* server = net.add_node("server", 3e9);
  auto* attacker = net.add_node("attacker", 3e9);
  auto* sw = net.add_node("switch");
  sw->set_forwarding(true);
  const auto lc = net.connect(client, sw, {});
  const auto ls = net.connect(server, sw, {});
  const auto la = net.connect(attacker, sw, {});
  client->add_address(lc.iface_a, Ipv4Addr(10, 0, 1, 1));
  server->add_address(ls.iface_a, Ipv4Addr(10, 0, 2, 1));
  attacker->add_address(la.iface_a, Ipv4Addr(10, 0, 3, 1));
  sw->add_address(lc.iface_b, Ipv4Addr(10, 0, 1, 254));
  sw->add_address(ls.iface_b, Ipv4Addr(10, 0, 2, 254));
  sw->add_address(la.iface_b, Ipv4Addr(10, 0, 3, 254));
  client->set_default_route(lc.iface_a);
  server->set_default_route(ls.iface_a);
  attacker->set_default_route(la.iface_a);
  sw->add_route(IpAddr(Ipv4Addr(10, 0, 1, 0)), 24, lc.iface_b);
  sw->add_route(IpAddr(Ipv4Addr(10, 0, 2, 0)), 24, ls.iface_b);
  sw->add_route(IpAddr(Ipv4Addr(10, 0, 3, 0)), 24, la.iface_b);

  hip::HipConfig server_cfg;
  server_cfg.puzzle_difficulty = 6;
  server_cfg.adaptive_puzzle = true;
  server_cfg.adaptive_threshold_rps = 20;
  hip::HipDaemon hs(server, make_identity("server"), server_cfg);
  hip::HipDaemon hc(client, make_identity("client"));
  hs.add_peer(hc.hit(), IpAddr(Ipv4Addr(10, 0, 1, 1)));
  hc.add_peer(hs.hit(), IpAddr(Ipv4Addr(10, 0, 2, 1)));

  // Attacker floods spoofed I1s (no intention to solve puzzles).
  for (int i = 0; i < 2000; ++i) {
    net.loop().schedule(i * sim::from_millis(1), [&] {
      hip::HipMessage i1;
      i1.type = hip::MsgType::kI1;
      i1.sender_hit = net::Ipv6Addr::parse("2001:10::dead");
      i1.receiver_hit = hs.hit();
      net::Packet pkt;
      pkt.src = Ipv4Addr(10, 0, 3, 1);
      pkt.dst = Ipv4Addr(10, 0, 2, 1);
      pkt.proto = net::IpProto::kHip;
      pkt.payload = i1.serialize();
      pkt.stamp_l3_overhead();
      attacker->send_raw(std::move(pkt));
    });
  }

  // Mid-flood, the legitimate client initiates.
  sim::Duration bex_latency = 0;
  hc.on_established(
      [&](const net::Ipv6Addr&, sim::Duration l) { bex_latency = l; });
  net.loop().schedule(sim::kSecond, [&] { hc.initiate(hs.hit()); });

  net.loop().run(20 * sim::kSecond);

  // The flood raised the puzzle difficulty...
  EXPECT_GT(hs.current_puzzle_difficulty(), 6);
  // ...the responder only did cheap work per flood packet (it answered
  // with precomputed R1s, no signatures, no state)...
  EXPECT_EQ(hs.stats().bex_completed, 1u);
  EXPECT_GE(hs.stats().r1_sent, 1000u);
  // ...and the legitimate client still established, paying the higher
  // puzzle cost.
  EXPECT_EQ(hc.state(hs.hit()), hip::AssocState::kEstablished);
  EXPECT_GT(bex_latency, 0);
}

TEST(DosResilience, BogusSolutionsAreCheapToReject) {
  net::Network net(79);
  auto* a = net.add_node("a", 3e9);
  auto* b = net.add_node("b", 3e9);
  const auto link = net.connect(a, b, {});
  a->add_address(link.iface_a, Ipv4Addr(10, 0, 0, 1));
  b->add_address(link.iface_b, Ipv4Addr(10, 0, 0, 2));
  a->set_default_route(link.iface_a);
  b->set_default_route(link.iface_b);
  hip::HipConfig cfg;
  cfg.puzzle_difficulty = 12;
  hip::HipDaemon hb(b, make_identity("victim"), cfg);
  const auto attacker_id = make_identity("attacker");

  // Forge I2s with junk puzzle solutions: the victim must reject them on
  // the single-hash check without doing DH/signature work.
  const double cycles_before = b->cpu().total_cycles();
  for (int i = 0; i < 50; ++i) {
    hip::HipMessage i2;
    i2.type = hip::MsgType::kI2;
    i2.sender_hit = attacker_id.hit();
    i2.receiver_hit = hb.hit();
    crypto::Bytes solution{12};
    crypto::append_be(solution, 42, 8);  // responder's I is different
    crypto::append_be(solution, static_cast<std::uint64_t>(i), 8);
    i2.set_param(hip::ParamType::kSolution, std::move(solution));
    i2.set_param(hip::ParamType::kDiffieHellman, crypto::Bytes(193, 1));
    i2.set_param(hip::ParamType::kHostId, attacker_id.public_encoding());
    i2.set_param(hip::ParamType::kEspInfo, crypto::Bytes(5, 1));
    i2.set_param(hip::ParamType::kSignature, crypto::Bytes(128, 0));
    net::Packet pkt;
    pkt.src = Ipv4Addr(10, 0, 0, 1);
    pkt.dst = Ipv4Addr(10, 0, 0, 2);
    pkt.proto = net::IpProto::kHip;
    pkt.payload = i2.serialize();
    pkt.stamp_l3_overhead();
    a->send_raw(std::move(pkt));
  }
  net.loop().run();
  const double cycles_spent = b->cpu().total_cycles() - cycles_before;
  // 50 bogus I2s must cost far less than one real DH+verify+sign
  // (~4.4e6 cycles): the puzzle check gates the expensive work.
  EXPECT_LT(cycles_spent, 1e6);
  EXPECT_EQ(hb.stats().bex_completed, 0u);
}

}  // namespace
}  // namespace hipcloud
