// Cross-module integration tests: determinism, DNS-driven HIP discovery,
// migration with live traffic, and end-to-end tenant isolation.

#include <gtest/gtest.h>

#include "cloud/cloud.hpp"
#include "core/path_lab.hpp"
#include "core/testbed.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha_mb.hpp"
#include "net/dns.hpp"

namespace hipcloud {
namespace {

using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

TEST(Determinism, HashIdenticalAcrossCryptoBackends) {
  // The crypto backend (scalar vs SHA-NI vs multi-buffer lanes) and the
  // batched ESP datapath must never leak into simulation state: the
  // per-world FNV-1a event-order hash is byte-identical whichever
  // backend computes the (bit-identical) ciphertext and ICVs.
  auto run = [] {
    core::TestbedConfig cfg;
    cfg.deployment.mode = core::SecurityMode::kHip;
    cfg.deployment.dataset.items = 100;
    core::Testbed bed(cfg);
    const auto report = bed.run_closed_loop(5, 8 * sim::kSecond);
    EXPECT_GT(report.completed, 0u);
    return bed.network().perf().determinism_hash;
  };
  crypto::sha256_backend::set_for_test(crypto::sha256_backend::Kind::kScalar);
  crypto::shamb::set_lane_cap_for_test(1);
  const auto scalar_hash = run();
  crypto::sha256_backend::set_for_test(crypto::sha256_backend::Kind::kAuto);
  crypto::shamb::set_lane_cap_for_test(4);
  const auto sse_hash = run();
  crypto::shamb::set_lane_cap_for_test(0);
  const auto auto_hash = run();
  EXPECT_EQ(scalar_hash, sse_hash);
  EXPECT_EQ(scalar_hash, auto_hash);
}

TEST(Determinism, IdenticalSeedsGiveIdenticalResults) {
  auto run = [] {
    core::TestbedConfig cfg;
    cfg.deployment.mode = core::SecurityMode::kHip;
    cfg.deployment.dataset.items = 100;
    core::Testbed bed(cfg);
    return bed.run_closed_loop(5, 8 * sim::kSecond);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_DOUBLE_EQ(a.latency_ms.mean(), b.latency_ms.mean());
}

TEST(Determinism, DifferentSeedsDiverge) {
  auto run = [](std::uint64_t seed) {
    core::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.deployment.seed = seed;
    cfg.deployment.dataset.items = 100;
    core::Testbed bed(cfg);
    return bed.run_closed_loop(5, 8 * sim::kSecond);
  };
  const auto a = run(1);
  const auto b = run(2);
  // Same workload semantics, different random draws.
  EXPECT_NE(a.latency_ms.mean(), b.latency_ms.mean());
}

/// The paper's deployment note: HIP records can live in the DNS, so peers
/// discover (HIT, HI, locator) dynamically. Resolve a HIP record and use
/// it to establish an association.
TEST(DnsHipDiscovery, ResolveThenEstablish) {
  net::Network net(51);
  cloud::Cloud ec2(net, cloud::ProviderProfile::ec2(), 1);
  ec2.add_host();
  auto* service = ec2.launch("svc", cloud::InstanceType::small());
  auto* client = ec2.launch("cli", cloud::InstanceType::small());
  auto* dns_vm = ec2.launch("dns", cloud::InstanceType::small());

  crypto::HmacDrbg d1(1, "dns-svc"), d2(2, "dns-cli");
  hip::HipDaemon hip_svc(service->node(),
                         hip::HostIdentity::generate(
                             d1, hip::HiAlgorithm::kRsa, 1024));
  hip::HipDaemon hip_cli(client->node(),
                         hip::HostIdentity::generate(
                             d2, hip::HiAlgorithm::kRsa, 1024));
  hip_svc.add_peer(hip_cli.hit(), IpAddr(client->private_ip()));

  // The cloud provider publishes the VM's HIP + A records.
  net::UdpStack u_dns(dns_vm->node()), u_cli(client->node());
  net::DnsServer dns(dns_vm->node(), &u_dns);
  dns.add_record("svc.cloud",
                 net::DnsRecord::hip(hip_svc.hit(),
                                     hip_svc.identity().public_encoding()));
  dns.add_record("svc.cloud", net::DnsRecord::a(service->private_ip()));

  net::DnsResolver resolver(client->node(), &u_cli,
                            Endpoint{IpAddr(dns_vm->private_ip()),
                                     net::kDnsPort});
  std::optional<net::Ipv6Addr> hit;
  std::optional<Ipv4Addr> locator;
  resolver.query("svc.cloud", net::DnsType::kHip,
                 [&](std::vector<net::DnsRecord> records) {
                   if (!records.empty()) hit = records[0].hip_hit();
                 });
  resolver.query("svc.cloud", net::DnsType::kA,
                 [&](std::vector<net::DnsRecord> records) {
                   if (!records.empty()) locator = records[0].as_a();
                 });
  net.loop().run();
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(locator.has_value());
  EXPECT_EQ(*hit, hip_svc.hit());
  EXPECT_EQ(*locator, service->private_ip());

  hip_cli.add_peer(*hit, IpAddr(*locator));
  hip_cli.initiate(*hit);
  net.loop().run();
  EXPECT_EQ(hip_cli.state(*hit), hip::AssocState::kEstablished);
}

/// Live migration under load: a TCP stream addressed by HIT survives the
/// VM moving to another host/subnet.
TEST(MigrationIntegration, TcpStreamSurvivesMigration) {
  net::Network net(53);
  cloud::Cloud ec2(net, cloud::ProviderProfile::ec2(), 1);
  auto* h0 = ec2.add_host();
  auto* h1 = ec2.add_host();
  auto* server_vm = ec2.launch("srv", cloud::InstanceType::small(), "t", h0);
  auto* client_vm = ec2.launch("cli", cloud::InstanceType::small(), "t", h0);

  crypto::HmacDrbg d1(1, "mig-srv"), d2(2, "mig-cli");
  hip::HipDaemon hs(server_vm->node(),
                    hip::HostIdentity::generate(d1, hip::HiAlgorithm::kRsa,
                                                1024));
  hip::HipDaemon hc(client_vm->node(),
                    hip::HostIdentity::generate(d2, hip::HiAlgorithm::kRsa,
                                                1024));
  hs.add_peer(hc.hit(), IpAddr(client_vm->private_ip()));
  hc.add_peer(hs.hit(), IpAddr(server_vm->private_ip()));

  net::TcpStack ts(server_vm->node()), tc(client_vm->node());
  std::size_t received = 0;
  ts.listen(80, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_data([&](crypto::Bytes data) { received += data.size(); });
  });
  auto conn = tc.connect(Endpoint{IpAddr(hs.hit()), 80});
  // Drip-feed data across the migration window.
  constexpr int kChunks = 100;
  for (int i = 0; i < kChunks; ++i) {
    net.loop().schedule(i * 100 * sim::kMillisecond,
                        [&, i] { conn->send(crypto::Bytes(1000, 0x77)); });
  }
  net.loop().schedule(3 * sim::kSecond, [&] {
    ec2.migrate(server_vm, h1, [&](const cloud::Cloud::MigrationReport& r) {
      hs.move_to(IpAddr(r.new_ip));
    });
  });
  net.loop().run(60 * sim::kSecond);
  EXPECT_EQ(received, kChunks * 1000u);
  EXPECT_TRUE(conn->established());
}

/// Multi-tenant isolation end-to-end: tenant B cannot read tenant A's
/// database even from inside the same cloud, in any of three ways.
TEST(TenantIsolation, RivalCannotReachProtectedService) {
  net::Network net(57);
  cloud::Cloud ec2(net, cloud::ProviderProfile::ec2(), 1);
  ec2.add_host();
  ec2.add_host();
  auto* svc = ec2.launch("svc", cloud::InstanceType::small(), "acme");
  auto* friendly = ec2.launch("friendly", cloud::InstanceType::small(),
                              "acme");
  auto* rival = ec2.launch("rival", cloud::InstanceType::small(), "rival");

  crypto::HmacDrbg d1(1, "iso-svc"), d2(2, "iso-friend"), d3(3, "iso-rival");
  hip::HipDaemon h_svc(svc->node(), hip::HostIdentity::generate(
                                        d1, hip::HiAlgorithm::kRsa, 1024));
  hip::HipDaemon h_friend(friendly->node(),
                          hip::HostIdentity::generate(
                              d2, hip::HiAlgorithm::kRsa, 1024));
  hip::HipDaemon h_rival(rival->node(),
                         hip::HostIdentity::generate(
                             d3, hip::HiAlgorithm::kRsa, 1024));
  // hosts.allow: only the friendly VM.
  h_svc.set_default_accept(false);
  h_svc.allow(h_friend.hit());
  h_svc.add_peer(h_friend.hit(), IpAddr(friendly->private_ip()));
  h_friend.add_peer(h_svc.hit(), IpAddr(svc->private_ip()));
  h_rival.add_peer(h_svc.hit(), IpAddr(svc->private_ip()));

  net::UdpStack us(svc->node()), uf(friendly->node()), ur(rival->node());
  int svc_hits = 0;
  us.bind(7, [&](const Endpoint& from, const IpAddr&, crypto::Bytes) {
    ++svc_hits;
    us.send(7, from, crypto::to_bytes("secret"));
  });

  int friend_got = 0, rival_got = 0;
  uf.bind(9, [&](const Endpoint&, const IpAddr&, crypto::Bytes) {
    ++friend_got;
  });
  ur.bind(9, [&](const Endpoint&, const IpAddr&, crypto::Bytes) {
    ++rival_got;
  });

  // 1. Friendly VM over HIP: works.
  uf.send(9, Endpoint{IpAddr(h_svc.hit()), 7}, crypto::Bytes(4, 1));
  // 2. Rival over HIP: BEX denied by ACL.
  ur.send(9, Endpoint{IpAddr(h_svc.hit()), 7}, crypto::Bytes(4, 2));
  // 3. Rival forging ESP with a random SPI: dropped by the SA table.
  net::Packet forged;
  forged.src = rival->private_ip();
  forged.dst = svc->private_ip();
  forged.proto = net::IpProto::kEsp;
  crypto::append_be(forged.payload, 0x12345678u, 4);
  forged.payload.resize(80, 0xaa);
  forged.stamp_l3_overhead();
  rival->node()->send_raw(std::move(forged));

  net.loop().run(30 * sim::kSecond);
  EXPECT_EQ(friend_got, 1);
  EXPECT_EQ(rival_got, 0);
  EXPECT_EQ(svc_hits, 1);
  EXPECT_GT(h_svc.stats().acl_rejects, 0u);
}

/// PathLab smoke: every connectivity mode functions (the Figure 3 rig).
class PathLabModes
    : public ::testing::TestWithParam<core::PathLab::Path> {};

TEST_P(PathLabModes, PingAndSmallTransferWork) {
  core::PathLab lab;
  const auto dst = lab.establish(GetParam());
  EXPECT_GT(lab.ping_rtt_ms(dst, 5), 0.0);
  EXPECT_GT(lab.iperf_mbps(dst, 2 * sim::kSecond), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPaths, PathLabModes,
    ::testing::Values(core::PathLab::Path::kIpv4, core::PathLab::Path::kLsi,
                      core::PathLab::Path::kHit,
                      core::PathLab::Path::kTeredo,
                      core::PathLab::Path::kHitTeredo,
                      core::PathLab::Path::kLsiTeredo),
    [](const auto& name_info) {
      std::string name = core::PathLab::path_name(name_info.param);
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

}  // namespace
}  // namespace hipcloud
