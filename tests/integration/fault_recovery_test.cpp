// Chaos test: the full paper testbed (clients -> LB -> HIP-protected
// web/db VMs) survives a backend crash and a live-migration locator flip
// injected mid-workload. Clients must see a bounded error rate, the
// proxy must eject and revive the crashed backend, and the HIP layer
// must rekey and re-establish associations without manual intervention.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "sim/fault.hpp"

namespace hipcloud::core {
namespace {

TEST(FaultRecovery, ServiceSurvivesBackendCrashAndLocatorFlip) {
  TestbedConfig cfg;
  cfg.deployment.mode = SecurityMode::kHip;
  cfg.deployment.web_servers = 3;
  // Dead-peer detection fast enough to fire inside the run.
  cfg.deployment.hip.keepalive_interval = sim::kSecond;
  cfg.deployment.hip.keepalive_max_misses = 2;
  // Frontend failure masking tuned for the chaos window.
  cfg.deployment.proxy_health.max_failures = 2;
  cfg.deployment.proxy_health.reprobe_interval = 2 * sim::kSecond;
  cfg.deployment.proxy_health.retry_limit = 1;
  cfg.deployment.proxy_health.upstream_timeout = 2 * sim::kSecond;
  Testbed tb(cfg);
  auto& loop = tb.network().loop();
  auto& svc = tb.service();

  // Force an ESP rekey during the run: pretend the LB->web2 outbound SA
  // is a few hundred packets from the 2^32 sequence ceiling.
  ASSERT_TRUE(
      svc.lb_hip()->seek_esp_seq(svc.web_hip(2)->hit(), 0xFFFFFF00u));

  sim::FaultInjector chaos(&loop);
  const sim::Time t0 = loop.now();

  // Fault 1: web VM 0 crashes 5 s in and stays dark for 8 s.
  net::Node* web0 = svc.web_vms()[0]->node();
  chaos.window(
      "web0-crash", t0 + 5 * sim::kSecond, 8 * sim::kSecond,
      [web0] { web0->set_down(true); }, [web0] { web0->set_down(false); });

  // Fault 2: web VM 1 live-migrates 10 s in — its locator flips and the
  // HIP daemons must readdress via UPDATE on their own (nobody calls
  // move_to()).
  bool migrated = false;
  chaos.at("web1-migrate", t0 + 10 * sim::kSecond, [&] {
    tb.cloud().migrate(svc.web_vms()[1], tb.cloud().hosts()[0].get(),
                       [&](const cloud::Cloud::MigrationReport&) {
                         migrated = true;
                       });
  });

  const auto report = tb.run_closed_loop(8, 30 * sim::kSecond);

  // The workload made real progress and the chaos stayed masked: well
  // under 10 % of requests may error (unretryable POSTs that hit the
  // dead backend before ejection).
  EXPECT_GT(report.completed, 100u);
  EXPECT_LE(report.errors * 10, report.completed)
      << "error rate above 10%: " << report.errors << "/"
      << report.completed;

  // The proxy ejected the crashed backend and brought it back.
  EXPECT_GE(svc.proxy().ejections(), 1u);
  EXPECT_GE(svc.proxy().revivals(), 1u);

  // The HIP layer noticed the dead peer, rekeyed the near-exhausted SA,
  // and processed the migration UPDATE.
  const auto& lb_stats = svc.lb_hip()->stats();
  EXPECT_GE(lb_stats.peer_failures, 1u);
  EXPECT_GE(lb_stats.rekeys_completed, 1u);
  EXPECT_GT(lb_stats.updates_processed, 0u);
  EXPECT_TRUE(migrated);

  // Associations healed without manual intervention.
  EXPECT_EQ(svc.lb_hip()->state(svc.web_hip(0)->hit()),
            hip::AssocState::kEstablished);
  EXPECT_EQ(svc.lb_hip()->state(svc.web_hip(1)->hit()),
            hip::AssocState::kEstablished);
  EXPECT_EQ(svc.lb_hip()->state(svc.web_hip(2)->hit()),
            hip::AssocState::kEstablished);

  EXPECT_EQ(chaos.injected(), 2u);
  EXPECT_EQ(chaos.active(), 0u);
}

}  // namespace
}  // namespace hipcloud::core
