#include "core/testbed.hpp"

#include <gtest/gtest.h>

namespace hipcloud::core {
namespace {

class ModeTest : public ::testing::TestWithParam<SecurityMode> {
 protected:
  TestbedConfig make_config() {
    TestbedConfig cfg;
    cfg.deployment.mode = GetParam();
    cfg.deployment.web_servers = 3;
    cfg.deployment.dataset.items = 200;
    cfg.deployment.dataset.users = 50;
    cfg.deployment.dataset.bids = 400;
    return cfg;
  }
};

TEST_P(ModeTest, ClosedLoopServesRequests) {
  Testbed bed(make_config());
  const auto report = bed.run_closed_loop(4, 10 * sim::kSecond);
  EXPECT_GT(report.completed, 50u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.latency_ms.mean(), 0.0);
  if (GetParam() == SecurityMode::kHip) {
    EXPECT_GT(bed.service().total_esp_packets(), 100u);
  }
}

TEST_P(ModeTest, RoundRobinSpreadsLoad) {
  Testbed bed(make_config());
  (void)bed.run_closed_loop(6, 10 * sim::kSecond);
  const auto& dispatched = bed.service().proxy().dispatched();
  ASSERT_EQ(dispatched.size(), 3u);
  const std::uint64_t total = dispatched[0] + dispatched[1] + dispatched[2];
  ASSERT_GT(total, 0u);
  for (const auto d : dispatched) {
    EXPECT_NEAR(static_cast<double>(d), static_cast<double>(total) / 3.0,
                static_cast<double>(total) * 0.1);
  }
}

TEST_P(ModeTest, OpenLoopMeetsRate) {
  Testbed bed(make_config());
  const auto report = bed.run_open_loop(50.0, 10 * sim::kSecond);
  EXPECT_EQ(report.errors, 0u);
  // 50 req/s over an 8 s counted window (2 s warmup).
  EXPECT_NEAR(report.throughput_rps(), 50.0, 5.0);
  EXPECT_GT(report.latency_ms.mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeTest,
                         ::testing::Values(SecurityMode::kBasic,
                                           SecurityMode::kHip,
                                           SecurityMode::kSsl),
                         [](const auto& name_info) {
                           return std::string(mode_name(name_info.param));
                         });

TEST(SecureService, BasicIsFasterThanSecuredModes) {
  auto run = [](SecurityMode mode) {
    TestbedConfig cfg;
    cfg.deployment.mode = mode;
    cfg.deployment.dataset.items = 200;
    Testbed bed(cfg);
    return bed.run_closed_loop(20, 12 * sim::kSecond);
  };
  const auto basic = run(SecurityMode::kBasic);
  const auto hip = run(SecurityMode::kHip);
  const auto ssl = run(SecurityMode::kSsl);
  EXPECT_GT(basic.throughput_rps(), hip.throughput_rps());
  EXPECT_GT(basic.throughput_rps(), ssl.throughput_rps());
  // HIP and SSL are comparable (within 25% of each other) — the paper's
  // headline claim.
  EXPECT_NEAR(hip.throughput_rps() / ssl.throughput_rps(), 1.0, 0.25);
}

TEST(SecureService, HitAddressingOutperformsLsi) {
  auto run = [](HipAddressing addressing) {
    TestbedConfig cfg;
    cfg.deployment.mode = SecurityMode::kHip;
    cfg.deployment.hip_addressing = addressing;
    cfg.deployment.dataset.items = 200;
    Testbed bed(cfg);
    return bed.run_closed_loop(20, 12 * sim::kSecond);
  };
  const auto lsi = run(HipAddressing::kLsi);
  const auto hit = run(HipAddressing::kHit);
  // The paper attributes HIP's deficit to LSI translation; HIT addressing
  // must not be slower than LSI.
  EXPECT_GE(hit.throughput_rps(), lsi.throughput_rps() * 0.99);
}

TEST(SecureService, EavesdropperOnFabricSeesNoPlaintextInHipMode) {
  TestbedConfig cfg;
  cfg.deployment.mode = SecurityMode::kHip;
  cfg.deployment.dataset.items = 50;
  Testbed bed(cfg);
  // Tap the datacenter fabric switch — the multi-tenant shared network.
  std::vector<crypto::Bytes> captured;
  bed.cloud().fabric()->set_forward_hook(
      [&](net::Packet& pkt, std::size_t) {
        captured.push_back(pkt.payload);
        return true;
      });
  (void)bed.run_closed_loop(2, 5 * sim::kSecond);
  ASSERT_FALSE(captured.empty());
  // RUBiS pages all contain "<html>"; none may be visible on the fabric.
  const auto needle = crypto::to_bytes("<html>");
  for (const auto& wire : captured) {
    EXPECT_EQ(std::search(wire.begin(), wire.end(), needle.begin(),
                          needle.end()),
              wire.end());
  }
}

TEST(SecureService, BasicModeLeaksPlaintextOnFabric) {
  TestbedConfig cfg;
  cfg.deployment.mode = SecurityMode::kBasic;
  cfg.deployment.dataset.items = 50;
  Testbed bed(cfg);
  std::vector<crypto::Bytes> captured;
  bed.cloud().fabric()->set_forward_hook(
      [&](net::Packet& pkt, std::size_t) {
        captured.push_back(pkt.payload);
        return true;
      });
  (void)bed.run_closed_loop(2, 5 * sim::kSecond);
  const auto needle = crypto::to_bytes("<html>");
  bool leaked = false;
  for (const auto& wire : captured) {
    if (std::search(wire.begin(), wire.end(), needle.begin(), needle.end()) !=
        wire.end()) {
      leaked = true;
      break;
    }
  }
  EXPECT_TRUE(leaked);  // sanity check that the tap actually works
}

}  // namespace
}  // namespace hipcloud::core
