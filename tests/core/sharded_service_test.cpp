#include "core/sharded_service.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace hipcloud::core {
namespace {

cloud::FabricConfig small_fabric() {
  cloud::FabricConfig cfg;
  cfg.racks = 4;  // proxy rack, two web racks, db rack
  cfg.hosts_per_rack = 1;
  cfg.vms_per_host = 1;
  return cfg;
}

ShardedServiceConfig small_service(SecurityMode mode) {
  ShardedServiceConfig cfg;
  cfg.mode = mode;
  cfg.dataset.items = 200;
  cfg.dataset.users = 50;
  cfg.dataset.bids = 400;
  cfg.clients_per_rack = 2;
  cfg.duration = 2 * sim::kSecond;
  return cfg;
}

struct ServiceRun {
  std::uint64_t hash;
  std::uint64_t completed;
  std::uint64_t errors;
  std::uint64_t esp;
};

ServiceRun run_service(SecurityMode mode, unsigned workers) {
  cloud::ShardedFabric fabric(small_fabric());
  ShardedService service(fabric, small_service(mode));
  service.prepare();
  fabric.run(sim::kSecond, workers);  // BEX warm-up window
  service.start_clients();
  fabric.run(5 * sim::kSecond, workers);
  const auto report = service.report();
  return ServiceRun{fabric.world_hash(), report.completed, report.errors,
                    service.total_esp_packets()};
}

class ShardedModeTest : public ::testing::TestWithParam<SecurityMode> {};

TEST_P(ShardedModeTest, ServesCrossRackTrafficAndHashIsWorkerInvariant) {
  const ServiceRun base = run_service(GetParam(), 1);
  EXPECT_GT(base.completed, 50u);
  EXPECT_EQ(base.errors, 0u);
  if (GetParam() == SecurityMode::kHip) {
    // Proxy->web and web->db hops all ride BEET-ESP across shard seams.
    EXPECT_GT(base.esp, 100u);
  }
  for (const unsigned workers : {2u, 4u}) {
    const ServiceRun r = run_service(GetParam(), workers);
    EXPECT_EQ(r.hash, base.hash) << "workers=" << workers;
    EXPECT_EQ(r.completed, base.completed) << "workers=" << workers;
    EXPECT_EQ(r.esp, base.esp) << "workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ShardedModeTest,
                         ::testing::Values(SecurityMode::kBasic,
                                           SecurityMode::kHip),
                         [](const auto& name_info) {
                           return std::string(mode_name(name_info.param));
                         });

TEST(ShardedService, ProxySpreadsLoadAcrossWebRacks) {
  cloud::ShardedFabric fabric(small_fabric());
  ShardedService service(fabric, small_service(SecurityMode::kBasic));
  service.start_clients();
  fabric.run(5 * sim::kSecond, 2);
  const auto& dispatched = service.proxy().dispatched();
  ASSERT_EQ(dispatched.size(), 2u);  // racks 1 and 2
  EXPECT_GT(dispatched[0], 0u);
  EXPECT_GT(dispatched[1], 0u);
  EXPECT_EQ(service.web_rack(0), 1u);
  EXPECT_EQ(service.web_rack(1), 2u);
}

}  // namespace
}  // namespace hipcloud::core
