// ReverseProxy health checks (HAProxy `check`/`fall`/`inter`),
// idempotent-retry redispatch, and the least-outstanding tie-break fix.
#include <gtest/gtest.h>

#include "apps/http_client.hpp"
#include "apps/http_server.hpp"
#include "apps/reverse_proxy.hpp"

namespace hipcloud::apps {
namespace {

using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

/// client -- lb -- {b0, b1, b2}, each backend echoing its index.
struct ProxyTopo {
  net::Network net{11};
  net::Node* client_node;
  net::Node* lb;
  std::vector<net::Node*> backends;
  std::vector<std::unique_ptr<net::TcpStack>> stacks;
  std::vector<std::unique_ptr<HttpServer>> servers;
  std::vector<Endpoint> backend_eps;
  std::unique_ptr<net::TcpStack> lb_tcp, client_tcp;
  std::unique_ptr<ReverseProxy> proxy;
  std::unique_ptr<HttpClient> client;

  explicit ProxyTopo(ReverseProxy::Balance balance,
                     ProxyHealthConfig health) {
    client_node = net.add_node("client", 8e9);
    lb = net.add_node("lb", 8e9);
    const auto cl = net.connect(client_node, lb, {});
    client_node->add_address(cl.iface_a, Ipv4Addr(10, 0, 0, 1));
    lb->add_address(cl.iface_b, Ipv4Addr(10, 0, 0, 2));
    client_node->set_default_route(cl.iface_a);
    lb->add_route(IpAddr(Ipv4Addr(10, 0, 0, 0)), 24, cl.iface_b);
    for (int i = 0; i < 3; ++i) {
      auto* b = net.add_node("b" + std::to_string(i), 8e9);
      const auto bl = net.connect(lb, b, {});
      const Ipv4Addr addr(10, 0, std::uint8_t(i + 1), 2);
      lb->add_address(bl.iface_a, Ipv4Addr(10, 0, std::uint8_t(i + 1), 1));
      b->add_address(bl.iface_b, addr);
      b->set_default_route(bl.iface_b);
      lb->add_route(IpAddr(addr), 32, bl.iface_a);
      backends.push_back(b);
      stacks.push_back(std::make_unique<net::TcpStack>(b));
      servers.push_back(
          std::make_unique<HttpServer>(b, stacks.back().get(), 8080));
      servers.back()->set_handler(
          [i](const HttpRequest&, HttpServer::RespondFn done) {
            done(HttpResponse::make(
                200, crypto::to_bytes("backend" + std::to_string(i))));
          });
      backend_eps.push_back(Endpoint{IpAddr(addr), 8080});
    }
    lb_tcp = std::make_unique<net::TcpStack>(lb);
    proxy = std::make_unique<ReverseProxy>(lb, lb_tcp.get(), 80,
                                           TransportConfig{},
                                           TransportConfig{}, backend_eps,
                                           balance, health);
    client_tcp = std::make_unique<net::TcpStack>(client_node);
    client = std::make_unique<HttpClient>(client_node, client_tcp.get());
  }

  /// Issue `n` sequential GETs through the proxy; returns how many
  /// succeeded (non-502) once the loop has been run by the caller. The
  /// continuation lives in a member (not a self-capturing shared
  /// function, which would be a reference cycle); chains never overlap —
  /// each call is followed by a loop.run() before the next.
  void send_sequential(int n, int* ok) {
    send_next_ = [this, ok](int remaining) {
      if (remaining == 0) return;
      client->request(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 80},
                      HttpRequest{},
                      [this, ok, remaining](std::optional<HttpResponse> resp,
                                            sim::Duration) {
                        if (resp && resp->status == 200) ++*ok;
                        send_next_(remaining - 1);
                      });
    };
    send_next_(n);
  }

  std::function<void(int)> send_next_;
};

ProxyHealthConfig fast_health() {
  ProxyHealthConfig h;
  h.max_failures = 1;
  h.reprobe_interval = 2 * sim::kSecond;
  h.retry_limit = 1;
  h.retry_backoff = sim::from_millis(50);
  h.upstream_timeout = sim::kSecond;
  return h;
}

TEST(ReverseProxyHealth, CrashedBackendIsEjectedMaskedAndRevived) {
  ProxyTopo topo(ReverseProxy::Balance::kRoundRobin, fast_health());
  auto& loop = topo.net.loop();

  // Backend 0 crashes before any traffic.
  topo.backends[0]->set_down(true);

  int ok = 0;
  topo.send_sequential(6, &ok);
  loop.run(loop.now() + 30 * sim::kSecond);

  // The first request hit b0, timed out, was redispatched to a healthy
  // backend — the client never saw the failure.
  EXPECT_EQ(ok, 6);
  EXPECT_EQ(topo.proxy->errors(), 0u);
  EXPECT_EQ(topo.proxy->retries(), 1u);
  EXPECT_EQ(topo.proxy->ejections(), 1u);
  EXPECT_FALSE(topo.proxy->healthy(0));
  EXPECT_EQ(topo.proxy->dispatched()[0], 1u);  // never picked again

  // While down, the proxy keeps re-probing on the reprobe interval.
  EXPECT_GT(topo.proxy->probes_sent(), 0u);

  // Backend restarts; the next probe brings it back into rotation.
  topo.backends[0]->set_down(false);
  loop.run(loop.now() + 10 * sim::kSecond);
  EXPECT_EQ(topo.proxy->revivals(), 1u);
  EXPECT_TRUE(topo.proxy->healthy(0));

  int ok2 = 0;
  topo.send_sequential(6, &ok2);
  loop.run(loop.now() + 10 * sim::kSecond);
  EXPECT_EQ(ok2, 6);
  EXPECT_GT(topo.proxy->dispatched()[0], 1u);  // back in rotation
}

TEST(ReverseProxyHealth, NonIdempotentRequestsAreNotRetried) {
  ProxyTopo topo(ReverseProxy::Balance::kRoundRobin, fast_health());
  auto& loop = topo.net.loop();
  topo.backends[0]->set_down(true);

  // POSTs must not be redispatched: the first one to hit the dead
  // backend surfaces as a 502 instead of a silent replay.
  int ok = 0, err = 0;
  for (int i = 0; i < 3; ++i) {
    HttpRequest req;
    req.method = "POST";
    topo.client->request(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 80}, req,
                         [&](std::optional<HttpResponse> resp,
                             sim::Duration) {
                           if (resp && resp->status == 200) ++ok;
                           if (resp && resp->status == 502) ++err;
                         });
  }
  loop.run(loop.now() + 30 * sim::kSecond);
  EXPECT_EQ(err, 1);
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(topo.proxy->retries(), 0u);
  EXPECT_EQ(topo.proxy->errors(), 1u);
}

// Satellite (c): with every backend idle, least-outstanding is a
// permanent tie — the old std::min_element scan pinned all such picks to
// backend 0. The rotating tie-break must spread them evenly.
TEST(ReverseProxyHealth, LeastOutstandingTieBreakRotates) {
  ProxyTopo topo(ReverseProxy::Balance::kLeastOutstanding,
                 ProxyHealthConfig{});
  auto& loop = topo.net.loop();
  int ok = 0;
  topo.send_sequential(9, &ok);  // sequential → outstanding is always 0
  loop.run(loop.now() + 30 * sim::kSecond);
  EXPECT_EQ(ok, 9);
  EXPECT_EQ(topo.proxy->dispatched()[0], 3u);
  EXPECT_EQ(topo.proxy->dispatched()[1], 3u);
  EXPECT_EQ(topo.proxy->dispatched()[2], 3u);
}

}  // namespace
}  // namespace hipcloud::apps
