#include "apps/http.hpp"

#include <gtest/gtest.h>

namespace hipcloud::apps {
namespace {

using crypto::Bytes;

TEST(HttpRequest, SerializeHasRequestLineAndLength) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/bid";
  req.body = crypto::to_bytes("item=1");
  const Bytes wire = req.serialize();
  const std::string s(wire.begin(), wire.end());
  EXPECT_NE(s.find("POST /bid HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(s.find("content-length: 6"), std::string::npos);
  EXPECT_NE(s.find("\r\n\r\nitem=1"), std::string::npos);
}

TEST(HttpRequest, QueryParams) {
  HttpRequest req;
  req.path = "/item?id=42&sort=asc";
  EXPECT_EQ(req.path_only(), "/item");
  EXPECT_EQ(req.query_param("id"), std::optional<std::string>("42"));
  EXPECT_EQ(req.query_param("sort"), std::optional<std::string>("asc"));
  EXPECT_EQ(req.query_param("missing"), std::nullopt);
  HttpRequest plain;
  plain.path = "/home";
  EXPECT_EQ(plain.path_only(), "/home");
  EXPECT_EQ(plain.query_param("id"), std::nullopt);
}

TEST(HttpParser, ParsesSingleRequest) {
  HttpRequest req;
  req.path = "/browse?page=2";
  req.headers["host"] = "lb.cloud";
  HttpParser parser(HttpParser::Kind::kRequest);
  parser.feed(req.serialize());
  const auto out = parser.next_request();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->method, "GET");
  EXPECT_EQ(out->path, "/browse?page=2");
  EXPECT_EQ(out->headers.at("host"), "lb.cloud");
  EXPECT_FALSE(parser.next_request().has_value());
}

TEST(HttpParser, HandlesArbitraryChunking) {
  HttpRequest req;
  req.path = "/item?id=1";
  req.body = Bytes(100, 'x');
  const Bytes wire = req.serialize();
  for (std::size_t chunk = 1; chunk <= 7; ++chunk) {
    HttpParser parser(HttpParser::Kind::kRequest);
    for (std::size_t off = 0; off < wire.size(); off += chunk) {
      const std::size_t n = std::min(chunk, wire.size() - off);
      parser.feed(crypto::BytesView(wire).subspan(off, n));
    }
    const auto out = parser.next_request();
    ASSERT_TRUE(out.has_value()) << "chunk=" << chunk;
    EXPECT_EQ(out->body.size(), 100u);
  }
}

TEST(HttpParser, ParsesPipelinedRequests) {
  HttpRequest a, b;
  a.path = "/a";
  b.path = "/b";
  Bytes wire = a.serialize();
  const Bytes second = b.serialize();
  wire.insert(wire.end(), second.begin(), second.end());
  HttpParser parser(HttpParser::Kind::kRequest);
  parser.feed(wire);
  EXPECT_EQ(parser.next_request()->path, "/a");
  EXPECT_EQ(parser.next_request()->path, "/b");
}

TEST(HttpParser, ParsesResponse) {
  HttpResponse resp = HttpResponse::make(200, crypto::to_bytes("<html>"));
  resp.headers["server"] = "hipcloud";
  HttpParser parser(HttpParser::Kind::kResponse);
  parser.feed(resp.serialize());
  const auto out = parser.next_response();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, 200);
  EXPECT_EQ(out->headers.at("server"), "hipcloud");
  EXPECT_EQ(out->body, crypto::to_bytes("<html>"));
}

TEST(HttpParser, StatusCodesSurvive) {
  for (const int status : {200, 302, 400, 404, 500, 502}) {
    HttpParser parser(HttpParser::Kind::kResponse);
    parser.feed(HttpResponse::make(status, {}).serialize());
    ASSERT_EQ(parser.next_response()->status, status);
  }
}

TEST(HttpParser, MalformedHeaderSetsError) {
  HttpParser parser(HttpParser::Kind::kRequest);
  parser.feed(crypto::to_bytes("GET / HTTP/1.1\r\nbadheader\r\n\r\n"));
  EXPECT_TRUE(parser.error());
}

TEST(HttpParser, BadContentLengthSetsError) {
  HttpParser parser(HttpParser::Kind::kRequest);
  parser.feed(
      crypto::to_bytes("GET / HTTP/1.1\r\ncontent-length: abc\r\n\r\n"));
  EXPECT_TRUE(parser.error());
}

TEST(HttpParser, HeaderFloodGuard) {
  HttpParser parser(HttpParser::Kind::kRequest);
  parser.feed(Bytes(70 * 1024, 'a'));  // no header terminator
  EXPECT_TRUE(parser.error());
}

TEST(HttpParser, IncompleteBodyWaits) {
  HttpRequest req;
  req.body = Bytes(50, 'x');
  Bytes wire = req.serialize();
  HttpParser parser(HttpParser::Kind::kRequest);
  parser.feed(crypto::BytesView(wire).subspan(0, wire.size() - 10));
  EXPECT_FALSE(parser.next_request().has_value());
  parser.feed(crypto::BytesView(wire).subspan(wire.size() - 10));
  EXPECT_TRUE(parser.next_request().has_value());
}

TEST(HttpParser, HeaderNamesAreCaseInsensitive) {
  HttpParser parser(HttpParser::Kind::kRequest);
  parser.feed(crypto::to_bytes(
      "GET / HTTP/1.1\r\nContent-Length: 2\r\nX-Custom: Y\r\n\r\nok"));
  const auto out = parser.next_request();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->headers.at("x-custom"), "Y");
  EXPECT_EQ(out->body, crypto::to_bytes("ok"));
}

}  // namespace
}  // namespace hipcloud::apps
