#include <gtest/gtest.h>

#include "apps/http_client.hpp"
#include "apps/http_server.hpp"
#include "apps/reverse_proxy.hpp"

namespace hipcloud::apps {
namespace {

using crypto::Bytes;
using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

struct WebTopo {
  net::Network net{3};
  net::Node* client_node;
  net::Node* server_node;
  std::unique_ptr<net::TcpStack> tc, ts;

  WebTopo() {
    client_node = net.add_node("client", 8e9);
    server_node = net.add_node("server", 8e9);
    const auto link = net.connect(client_node, server_node, {});
    client_node->add_address(link.iface_a, Ipv4Addr(10, 0, 0, 1));
    server_node->add_address(link.iface_b, Ipv4Addr(10, 0, 0, 2));
    client_node->set_default_route(link.iface_a);
    server_node->set_default_route(link.iface_b);
    tc = std::make_unique<net::TcpStack>(client_node);
    ts = std::make_unique<net::TcpStack>(server_node);
  }

  Endpoint server_ep(std::uint16_t port) const {
    return Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), port};
  }
};

TEST(HttpServerClient, BasicRequestResponse) {
  WebTopo topo;
  HttpServer server(topo.server_node, topo.ts.get(), 80);
  server.set_handler([](const HttpRequest& req, HttpServer::RespondFn done) {
    done(HttpResponse::make(200, crypto::to_bytes("echo:" + req.path)));
  });
  HttpClient client(topo.client_node, topo.tc.get());
  std::optional<HttpResponse> got;
  HttpRequest req;
  req.path = "/hello";
  client.request(topo.server_ep(80), req,
                 [&](std::optional<HttpResponse> resp, sim::Duration) {
                   got = std::move(resp);
                 });
  topo.net.loop().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, crypto::to_bytes("echo:/hello"));
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpServerClient, KeepAliveReusesConnection) {
  WebTopo topo;
  HttpServer server(topo.server_node, topo.ts.get(), 80);
  server.set_handler([](const HttpRequest&, HttpServer::RespondFn done) {
    done(HttpResponse::make(200, Bytes(10, 'x')));
  });
  HttpClient client(topo.client_node, topo.tc.get());
  int completed = 0;
  std::function<void(int)> send_next = [&](int remaining) {
    if (remaining == 0) return;
    client.request(topo.server_ep(80), HttpRequest{},
                   [&, remaining](std::optional<HttpResponse> resp,
                                  sim::Duration) {
                     if (resp) ++completed;
                     send_next(remaining - 1);
                   });
  };
  send_next(5);
  topo.net.loop().run();
  EXPECT_EQ(completed, 5);
  // Sequential requests reuse the single pooled connection.
  EXPECT_EQ(server.active_connections(), 1u);
}

TEST(HttpServerClient, ConcurrentRequestsOpenParallelConnections) {
  WebTopo topo;
  HttpServer server(topo.server_node, topo.ts.get(), 80);
  server.set_handler([&](const HttpRequest&, HttpServer::RespondFn done) {
    // Delay each response so requests overlap.
    topo.net.loop().schedule(50 * sim::kMillisecond, [done] {
      done(HttpResponse::make(200, Bytes(4, 'y')));
    });
  });
  HttpClient client(topo.client_node, topo.tc.get());
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    client.request(topo.server_ep(80), HttpRequest{},
                   [&](std::optional<HttpResponse> resp, sim::Duration) {
                     if (resp) ++completed;
                   });
  }
  topo.net.loop().run();
  EXPECT_EQ(completed, 8);
  EXPECT_GT(server.active_connections(), 1u);
}

TEST(HttpServerClient, MissingHandlerGives404) {
  WebTopo topo;
  HttpServer server(topo.server_node, topo.ts.get(), 80);
  HttpClient client(topo.client_node, topo.tc.get());
  std::optional<HttpResponse> got;
  client.request(topo.server_ep(80), HttpRequest{},
                 [&](std::optional<HttpResponse> resp, sim::Duration) {
                   got = std::move(resp);
                 });
  topo.net.loop().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 404);
}

TEST(HttpServerClient, DeadServerTimesOut) {
  WebTopo topo;  // nothing listening on 81
  HttpClient client(topo.client_node, topo.tc.get());
  client.set_timeout(2 * sim::kSecond);
  bool called = false;
  client.request(topo.server_ep(81), HttpRequest{},
                 [&](std::optional<HttpResponse> resp, sim::Duration) {
                   called = true;
                   EXPECT_FALSE(resp.has_value());
                 });
  topo.net.loop().run(30 * sim::kSecond);
  EXPECT_TRUE(called);
  EXPECT_EQ(client.failures(), 1u);
}

TEST(HttpServerClient, LatencyIsMeasured) {
  WebTopo topo;
  HttpServer server(topo.server_node, topo.ts.get(), 80);
  server.set_handler([&](const HttpRequest&, HttpServer::RespondFn done) {
    topo.net.loop().schedule(30 * sim::kMillisecond, [done] {
      done(HttpResponse::make(200, {}));
    });
  });
  HttpClient client(topo.client_node, topo.tc.get());
  sim::Duration latency = 0;
  client.request(topo.server_ep(80), HttpRequest{},
                 [&](std::optional<HttpResponse>, sim::Duration l) {
                   latency = l;
                 });
  topo.net.loop().run();
  EXPECT_GE(latency, 30 * sim::kMillisecond);
  EXPECT_LT(latency, 100 * sim::kMillisecond);
}

TEST(ReverseProxy, RoundRobinAcrossBackends) {
  net::Network net{5};
  auto* client_node = net.add_node("client", 8e9);
  auto* lb = net.add_node("lb", 8e9);
  std::vector<net::Node*> backends;
  std::vector<std::unique_ptr<net::TcpStack>> stacks;
  std::vector<std::unique_ptr<HttpServer>> servers;
  // client -- lb -- {b0, b1, b2}
  const auto cl = net.connect(client_node, lb, {});
  client_node->add_address(cl.iface_a, Ipv4Addr(10, 0, 0, 1));
  lb->add_address(cl.iface_b, Ipv4Addr(10, 0, 0, 2));
  client_node->set_default_route(cl.iface_a);
  lb->add_route(IpAddr(Ipv4Addr(10, 0, 0, 0)), 24, cl.iface_b);
  std::vector<Endpoint> backend_eps;
  for (int i = 0; i < 3; ++i) {
    auto* b = net.add_node("b" + std::to_string(i), 8e9);
    const auto bl = net.connect(lb, b, {});
    const Ipv4Addr addr(10, 0, std::uint8_t(i + 1), 2);
    lb->add_address(bl.iface_a, Ipv4Addr(10, 0, std::uint8_t(i + 1), 1));
    b->add_address(bl.iface_b, addr);
    b->set_default_route(bl.iface_b);
    lb->add_route(IpAddr(addr), 32, bl.iface_a);
    backends.push_back(b);
    stacks.push_back(std::make_unique<net::TcpStack>(b));
    servers.push_back(std::make_unique<HttpServer>(b, stacks.back().get(),
                                                   8080));
    servers.back()->set_handler(
        [i](const HttpRequest&, HttpServer::RespondFn done) {
          done(HttpResponse::make(
              200, crypto::to_bytes("backend" + std::to_string(i))));
        });
    backend_eps.push_back(Endpoint{IpAddr(addr), 8080});
  }
  auto lb_tcp = std::make_unique<net::TcpStack>(lb);
  ReverseProxy proxy(lb, lb_tcp.get(), 80, {}, {}, backend_eps);

  auto client_tcp = std::make_unique<net::TcpStack>(client_node);
  HttpClient client(client_node, client_tcp.get());
  std::map<std::string, int> seen;
  int completed = 0;
  std::function<void(int)> send_next = [&](int remaining) {
    if (remaining == 0) return;
    client.request(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 80},
                   HttpRequest{},
                   [&, remaining](std::optional<HttpResponse> resp,
                                  sim::Duration) {
                     if (resp) {
                       ++completed;
                       seen[std::string(resp->body.begin(),
                                        resp->body.end())]++;
                     }
                     send_next(remaining - 1);
                   });
  };
  send_next(9);
  net.loop().run();
  EXPECT_EQ(completed, 9);
  EXPECT_EQ(seen.size(), 3u);
  for (const auto& [name, count] : seen) EXPECT_EQ(count, 3) << name;
  EXPECT_EQ(proxy.relayed(), 9u);
  EXPECT_EQ(proxy.errors(), 0u);
}

TEST(ReverseProxy, UpstreamFailureYields502) {
  net::Network net{7};
  auto* client_node = net.add_node("client", 8e9);
  auto* lb = net.add_node("lb", 8e9);
  const auto cl = net.connect(client_node, lb, {});
  client_node->add_address(cl.iface_a, Ipv4Addr(10, 0, 0, 1));
  lb->add_address(cl.iface_b, Ipv4Addr(10, 0, 0, 2));
  client_node->set_default_route(cl.iface_a);
  lb->add_route(IpAddr(Ipv4Addr(10, 0, 0, 0)), 24, cl.iface_b);
  auto lb_tcp = std::make_unique<net::TcpStack>(lb);
  // Backend endpoint points nowhere (no route).
  ReverseProxy proxy(lb, lb_tcp.get(), 80, {}, {},
                     {Endpoint{IpAddr(Ipv4Addr(10, 9, 9, 9)), 8080}});
  auto client_tcp = std::make_unique<net::TcpStack>(client_node);
  HttpClient client(client_node, client_tcp.get());
  std::optional<HttpResponse> got;
  client.request(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 80}, HttpRequest{},
                 [&](std::optional<HttpResponse> resp, sim::Duration) {
                   got = std::move(resp);
                 });
  net.loop().run(400 * sim::kSecond);  // TCP gives up after ~3 min of RTOs
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 502);
  EXPECT_EQ(proxy.errors(), 1u);
}

}  // namespace
}  // namespace hipcloud::apps
