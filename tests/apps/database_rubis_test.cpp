#include <gtest/gtest.h>

#include "apps/database.hpp"
#include "apps/rubis.hpp"
#include "apps/http_client.hpp"

namespace hipcloud::apps {
namespace {

using crypto::Bytes;
using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

struct DbTopo {
  net::Network net{9};
  net::Node* app;
  net::Node* db_node;
  std::unique_ptr<net::TcpStack> ta, td;

  DbTopo() {
    app = net.add_node("app", 8e9);
    db_node = net.add_node("db", 8e9);
    const auto link = net.connect(app, db_node, {});
    app->add_address(link.iface_a, Ipv4Addr(10, 0, 0, 1));
    db_node->add_address(link.iface_b, Ipv4Addr(10, 0, 0, 2));
    app->set_default_route(link.iface_a);
    db_node->set_default_route(link.iface_b);
    ta = std::make_unique<net::TcpStack>(app);
    td = std::make_unique<net::TcpStack>(db_node);
  }

  Endpoint db_ep() const { return Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 3306}; }
};

TEST(DbResult, SerializeParseRoundTrip) {
  DbResult result;
  result.rows.emplace_back(7, crypto::to_bytes("row-seven"));
  result.rows.emplace_back(8, Bytes{});
  const auto back = DbResult::parse(result.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->ok);
  ASSERT_EQ(back->rows.size(), 2u);
  EXPECT_EQ(back->rows[0].first, 7u);
  EXPECT_EQ(back->rows[0].second, crypto::to_bytes("row-seven"));
  EXPECT_TRUE(back->rows[1].second.empty());
}

TEST(DbResult, ParseRejectsTruncated) {
  DbResult result;
  result.rows.emplace_back(7, Bytes(20, 1));
  Bytes wire = result.serialize();
  wire.resize(wire.size() - 5);
  EXPECT_FALSE(DbResult::parse(wire).has_value());
  EXPECT_FALSE(DbResult::parse(Bytes(3, 0)).has_value());
}

TEST(Database, GetQuery) {
  DbTopo topo;
  DatabaseServer server(topo.db_node, topo.td.get(), 3306);
  server.load_row("items", 42, 128);
  DbClient client(topo.app, topo.ta.get(), topo.db_ep());
  std::optional<DbResult> got;
  client.query("GET items 42",
               [&](std::optional<DbResult> r, sim::Duration) { got = r; });
  topo.net.loop().run();
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->rows.size(), 1u);
  EXPECT_EQ(got->rows[0].first, 42u);
  EXPECT_EQ(got->rows[0].second.size(), 128u);
}

TEST(Database, GetMissingRowReturnsEmpty) {
  DbTopo topo;
  DatabaseServer server(topo.db_node, topo.td.get(), 3306);
  DbClient client(topo.app, topo.ta.get(), topo.db_ep());
  std::optional<DbResult> got;
  client.query("GET items 1",
               [&](std::optional<DbResult> r, sim::Duration) { got = r; });
  topo.net.loop().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok);
  EXPECT_TRUE(got->rows.empty());
}

TEST(Database, RangeQuery) {
  DbTopo topo;
  DatabaseServer server(topo.db_node, topo.td.get(), 3306);
  for (int i = 0; i < 50; ++i) server.load_row("items", i, 64);
  DbClient client(topo.app, topo.ta.get(), topo.db_ep());
  std::optional<DbResult> got;
  client.query("RANGE items 10 20",
               [&](std::optional<DbResult> r, sim::Duration) { got = r; });
  topo.net.loop().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->rows.size(), 10u);
  EXPECT_EQ(got->rows.front().first, 10u);
  EXPECT_EQ(got->rows.back().first, 19u);
}

TEST(Database, PutCreatesRow) {
  DbTopo topo;
  DatabaseServer server(topo.db_node, topo.td.get(), 3306);
  DbClient client(topo.app, topo.ta.get(), topo.db_ep());
  bool put_done = false;
  client.query("PUT bids 99 64",
               [&](std::optional<DbResult> r, sim::Duration) {
                 put_done = r.has_value() && r->ok;
               });
  topo.net.loop().run();
  EXPECT_TRUE(put_done);
  EXPECT_EQ(server.table_size("bids"), 1u);
}

TEST(Database, CountQuery) {
  DbTopo topo;
  DatabaseServer server(topo.db_node, topo.td.get(), 3306);
  for (int i = 0; i < 7; ++i) server.load_row("users", i, 8);
  DbClient client(topo.app, topo.ta.get(), topo.db_ep());
  std::uint64_t count = 0;
  client.query("COUNT users",
               [&](std::optional<DbResult> r, sim::Duration) {
                 if (r && !r->rows.empty()) count = r->rows[0].first;
               });
  topo.net.loop().run();
  EXPECT_EQ(count, 7u);
}

TEST(Database, UnknownOpReturnsError) {
  DbTopo topo;
  DatabaseServer server(topo.db_node, topo.td.get(), 3306);
  DbClient client(topo.app, topo.ta.get(), topo.db_ep());
  std::optional<DbResult> got;
  client.query("DROP TABLE items",
               [&](std::optional<DbResult> r, sim::Duration) { got = r; });
  topo.net.loop().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->ok);
}

TEST(Database, QueryCacheHitsAndInvalidation) {
  DbTopo topo;
  DbConfig cfg;
  cfg.query_cache = true;
  DatabaseServer server(topo.db_node, topo.td.get(), 3306, cfg);
  for (int i = 0; i < 10; ++i) server.load_row("items", i, 64);
  DbClient client(topo.app, topo.ta.get(), topo.db_ep());
  int done = 0;
  const auto cb = [&](std::optional<DbResult>, sim::Duration) { ++done; };
  client.query("GET items 3", cb);
  topo.net.loop().run();
  client.query("GET items 3", cb);  // cache hit
  topo.net.loop().run();
  EXPECT_EQ(server.cache_hits(), 1u);
  // A write to the table invalidates the cached entry.
  client.query("PUT items 3 64", cb);
  topo.net.loop().run();
  client.query("GET items 3", cb);
  topo.net.loop().run();
  EXPECT_EQ(server.cache_hits(), 1u);  // still 1: entry was invalidated
  EXPECT_EQ(done, 4);
}

TEST(Database, CacheHitIsFaster) {
  DbTopo topo;
  DbConfig cfg;
  cfg.query_cache = true;
  // Slow the DB node down so cost differences are visible.
  topo.db_node->cpu().set_cycles_per_second(1e8);
  DatabaseServer server(topo.db_node, topo.td.get(), 3306, cfg);
  for (int i = 0; i < 200; ++i) server.load_row("items", i, 2048);
  DbClient client(topo.app, topo.ta.get(), topo.db_ep());
  sim::Duration first = 0, second = 0;
  client.query("RANGE items 0 50",
               [&](std::optional<DbResult>, sim::Duration d) { first = d; });
  topo.net.loop().run();
  client.query("RANGE items 0 50",
               [&](std::optional<DbResult>, sim::Duration d) { second = d; });
  topo.net.loop().run();
  EXPECT_LT(second, first / 2);
}

TEST(Rubis, DatasetLoads) {
  DbTopo topo;
  DatabaseServer server(topo.db_node, topo.td.get(), 3306);
  RubisConfig cfg;
  cfg.items = 100;
  cfg.users = 20;
  cfg.bids = 50;
  load_rubis_dataset(server, cfg);
  EXPECT_EQ(server.table_size("items"), 100u);
  EXPECT_EQ(server.table_size("users"), 20u);
  EXPECT_EQ(server.table_size("bids"), 50u);
}

TEST(Rubis, EndpointsServePages) {
  DbTopo topo;
  DatabaseServer db(topo.db_node, topo.td.get(), 3306);
  RubisConfig cfg;
  cfg.items = 100;
  cfg.users = 20;
  cfg.bids = 50;
  load_rubis_dataset(db, cfg);
  RubisWebServer web(topo.app, topo.ta.get(), 8080, {}, topo.db_ep(), {},
                     cfg);
  // Query the web server from the DB node (it has a TCP stack too).
  HttpClient client(topo.db_node, topo.td.get());
  const Endpoint web_ep{IpAddr(Ipv4Addr(10, 0, 0, 1)), 8080};
  const char* paths[] = {"/home", "/browse?page=1", "/item?id=5",
                         "/bids?item=3", "/user?id=2"};
  for (const char* path : paths) {
    std::optional<HttpResponse> got;
    HttpRequest req;
    req.path = path;
    client.request(web_ep, req,
                   [&](std::optional<HttpResponse> resp, sim::Duration) {
                     got = std::move(resp);
                   });
    topo.net.loop().run();
    ASSERT_TRUE(got.has_value()) << path;
    EXPECT_EQ(got->status, 200) << path;
    EXPECT_GT(got->body.size(), 500u) << path;
  }
}

TEST(Rubis, BidPostWritesToDatabase) {
  DbTopo topo;
  DatabaseServer db(topo.db_node, topo.td.get(), 3306);
  RubisConfig cfg;
  load_rubis_dataset(db, cfg);
  const auto bids_before = db.table_size("bids");
  RubisWebServer web(topo.app, topo.ta.get(), 8080, {}, topo.db_ep(), {},
                     cfg);
  HttpClient client(topo.db_node, topo.td.get());
  HttpRequest req;
  req.method = "POST";
  req.path = "/bid";
  req.body = crypto::to_bytes("item=1&amount=9");
  std::optional<HttpResponse> got;
  client.request(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 1)), 8080}, req,
                 [&](std::optional<HttpResponse> resp, sim::Duration) {
                   got = std::move(resp);
                 });
  topo.net.loop().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(db.table_size("bids"), bids_before + 1);
}

TEST(Rubis, UnknownPathGives404) {
  DbTopo topo;
  DatabaseServer db(topo.db_node, topo.td.get(), 3306);
  RubisWebServer web(topo.app, topo.ta.get(), 8080, {}, topo.db_ep(), {},
                     {});
  HttpClient client(topo.db_node, topo.td.get());
  HttpRequest req;
  req.path = "/nonexistent";
  std::optional<HttpResponse> got;
  client.request(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 1)), 8080}, req,
                 [&](std::optional<HttpResponse> resp, sim::Duration) {
                   got = std::move(resp);
                 });
  topo.net.loop().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 404);
}

TEST(RubisRequestMix, CoversAllEndpointsAndIsDeterministic) {
  RubisConfig cfg;
  RubisRequestMix mix_a(cfg, 5);
  RubisRequestMix mix_b(cfg, 5);
  std::map<std::string, int> seen;
  for (int i = 0; i < 500; ++i) {
    const HttpRequest a = mix_a.next();
    const HttpRequest b = mix_b.next();
    EXPECT_EQ(a.path, b.path);  // deterministic from seed
    const auto q = a.path.find('?');
    seen[a.path.substr(0, q)]++;
  }
  EXPECT_GT(seen["/browse"], 50);
  EXPECT_GT(seen["/item"], 50);
  EXPECT_GT(seen["/bids"], 20);
  EXPECT_GT(seen["/user"], 10);
  EXPECT_GT(seen["/home"], 10);
  EXPECT_GT(seen["/bid"], 10);
}

}  // namespace
}  // namespace hipcloud::apps
