#include "apps/workload.hpp"

#include <gtest/gtest.h>

#include "apps/http_server.hpp"

namespace hipcloud::apps {
namespace {

using crypto::Bytes;
using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

struct LoadTopo {
  net::Network net{13};
  net::Node* clients;
  net::Node* server_node;
  std::unique_ptr<net::TcpStack> tc, ts;
  std::unique_ptr<HttpServer> server;

  LoadTopo() {
    clients = net.add_node("clients", 20e9);
    server_node = net.add_node("server", 20e9);
    const auto link = net.connect(clients, server_node, {});
    clients->add_address(link.iface_a, Ipv4Addr(10, 0, 0, 1));
    server_node->add_address(link.iface_b, Ipv4Addr(10, 0, 0, 2));
    clients->set_default_route(link.iface_a);
    server_node->set_default_route(link.iface_b);
    tc = std::make_unique<net::TcpStack>(clients);
    ts = std::make_unique<net::TcpStack>(server_node);
    server = std::make_unique<HttpServer>(server_node, ts.get(), 80);
    server->set_handler([](const HttpRequest&, HttpServer::RespondFn done) {
      done(HttpResponse::make(200, Bytes(256, 'x')));
    });
  }

  Endpoint target() const {
    return Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 80};
  }
};

TEST(ClosedLoop, CompletesAndMeasures) {
  LoadTopo topo;
  ClosedLoopClients::Config cfg;
  cfg.concurrency = 5;
  cfg.duration = 10 * sim::kSecond;
  cfg.target = topo.target();
  cfg.fixed_path = "/x";
  ClosedLoopClients load(topo.clients, topo.tc.get(), cfg);
  LoadReport report;
  bool done = false;
  load.start([&](const LoadReport& r) {
    report = r;
    done = true;
  });
  topo.net.loop().run();
  ASSERT_TRUE(done);
  EXPECT_GT(report.completed, 100u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.throughput_rps(), 0.0);
  EXPECT_GT(report.latency_ms.mean(), 0.0);
}

TEST(ClosedLoop, ThroughputScalesWithConcurrency) {
  auto run = [](int concurrency) {
    LoadTopo topo;
    ClosedLoopClients::Config cfg;
    cfg.concurrency = concurrency;
    cfg.duration = 10 * sim::kSecond;
    cfg.target = topo.target();
    cfg.fixed_path = "/x";
    ClosedLoopClients load(topo.clients, topo.tc.get(), cfg);
    LoadReport report;
    load.start([&](const LoadReport& r) { report = r; });
    topo.net.loop().run();
    return report.throughput_rps();
  };
  const double one = run(1);
  const double four = run(4);
  EXPECT_GT(four, one * 3.0);  // latency-bound regime scales ~linearly
}

TEST(ClosedLoop, ThinkTimeReducesThroughput) {
  auto run = [](sim::Duration think) {
    LoadTopo topo;
    ClosedLoopClients::Config cfg;
    cfg.concurrency = 4;
    cfg.duration = 10 * sim::kSecond;
    cfg.think_time = think;
    cfg.target = topo.target();
    cfg.fixed_path = "/x";
    ClosedLoopClients load(topo.clients, topo.tc.get(), cfg);
    LoadReport report;
    load.start([&](const LoadReport& r) { report = r; });
    topo.net.loop().run();
    return report.throughput_rps();
  };
  EXPECT_GT(run(0), run(100 * sim::kMillisecond) * 2);
}

TEST(OpenLoop, HitsConfiguredRate) {
  LoadTopo topo;
  OpenLoopGenerator::Config cfg;
  cfg.rate_rps = 200;
  cfg.duration = 10 * sim::kSecond;
  cfg.target = topo.target();
  cfg.fixed_path = "/x";
  OpenLoopGenerator gen(topo.clients, topo.tc.get(), cfg);
  LoadReport report;
  bool done = false;
  gen.start([&](const LoadReport& r) {
    report = r;
    done = true;
  });
  topo.net.loop().run();
  ASSERT_TRUE(done);
  EXPECT_NEAR(report.throughput_rps(), 200.0, 10.0);
  EXPECT_EQ(report.errors, 0u);
}

TEST(OpenLoop, PoissonAndDeterministicBothWork) {
  for (const bool poisson : {false, true}) {
    LoadTopo topo;
    OpenLoopGenerator::Config cfg;
    cfg.rate_rps = 100;
    cfg.duration = 5 * sim::kSecond;
    cfg.warmup = sim::kSecond;
    cfg.poisson = poisson;
    cfg.target = topo.target();
    cfg.fixed_path = "/x";
    OpenLoopGenerator gen(topo.clients, topo.tc.get(), cfg);
    LoadReport report;
    gen.start([&](const LoadReport& r) { report = r; });
    topo.net.loop().run();
    EXPECT_NEAR(report.throughput_rps(), 100.0, 15.0) << poisson;
  }
}

TEST(Iperf, MeasuresBandwidthNearLineRate) {
  net::Network net{17};
  auto* a = net.add_node("a", 100e9);
  auto* b = net.add_node("b", 100e9);
  net::LinkConfig link;
  link.bandwidth_bps = 100e6;
  link.latency = sim::from_micros(200);
  const auto att = net.connect(a, b, link);
  a->add_address(att.iface_a, Ipv4Addr(10, 0, 0, 1));
  b->add_address(att.iface_b, Ipv4Addr(10, 0, 0, 2));
  a->set_default_route(att.iface_a);
  b->set_default_route(att.iface_b);
  net::TcpStack ta(a), tb(b);
  IperfServer server(b, &tb, 5001);
  double mbps = 0;
  IperfClient::run(a, &ta, Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 5001},
                   10 * sim::kSecond,
                   [&](const IperfClient::Report& r) {
                     mbps = r.mbits_per_second;
                   });
  net.loop().run();
  EXPECT_GT(mbps, 70.0);   // within ~30% of the 100 Mbit/s line
  EXPECT_LT(mbps, 101.0);  // and never above it
  EXPECT_GT(server.bytes_received(), 10u * 1000 * 1000);
}

TEST(Iperf, WindowLimitsThroughputOnLongFatPath) {
  net::Network net{19};
  auto* a = net.add_node("a", 100e9);
  auto* b = net.add_node("b", 100e9);
  net::LinkConfig link;
  link.bandwidth_bps = 1e9;
  link.latency = sim::from_millis(10);  // 20 ms RTT
  const auto att = net.connect(a, b, link);
  a->add_address(att.iface_a, Ipv4Addr(10, 0, 0, 1));
  b->add_address(att.iface_b, Ipv4Addr(10, 0, 0, 2));
  a->set_default_route(att.iface_a);
  b->set_default_route(att.iface_b);
  net::TcpConfig tcp_cfg;
  tcp_cfg.receive_window = 64 * 1024;  // 64 KB / 20 ms = 25.6 Mbit/s cap
  net::TcpStack ta(a, tcp_cfg), tb(b, tcp_cfg);
  IperfServer server(b, &tb, 5001);
  double mbps = 0;
  IperfClient::run(a, &ta, Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 5001},
                   20 * sim::kSecond,
                   [&](const IperfClient::Report& r) {
                     mbps = r.mbits_per_second;
                   });
  net.loop().run();
  EXPECT_GT(mbps, 18.0);
  EXPECT_LT(mbps, 27.0);
}

}  // namespace
}  // namespace hipcloud::apps
