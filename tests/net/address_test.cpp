#include "net/address.hpp"

#include <gtest/gtest.h>

namespace hipcloud::net {
namespace {

TEST(Ipv4Addr, ParseAndFormat) {
  const auto addr = Ipv4Addr::parse("192.168.1.42");
  EXPECT_EQ(addr.to_string(), "192.168.1.42");
  EXPECT_EQ(addr, Ipv4Addr(192, 168, 1, 42));
  EXPECT_EQ(Ipv4Addr(0u).to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4Addr(255, 255, 255, 255).to_string(), "255.255.255.255");
}

TEST(Ipv4Addr, ParseRejectsGarbage) {
  EXPECT_THROW(Ipv4Addr::parse("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("hello"), std::invalid_argument);
}

TEST(Ipv4Addr, LsiRange) {
  EXPECT_TRUE(Ipv4Addr(1, 0, 0, 7).is_lsi());
  EXPECT_FALSE(Ipv4Addr(10, 0, 0, 7).is_lsi());
  EXPECT_FALSE(Ipv4Addr(2, 0, 0, 7).is_lsi());
}

TEST(Ipv6Addr, ParseFullForm) {
  const auto addr = Ipv6Addr::parse("2001:db8:0:0:0:0:0:1");
  EXPECT_EQ(addr.to_string(), "2001:db8::1");
}

TEST(Ipv6Addr, ParseCompressed) {
  EXPECT_EQ(Ipv6Addr::parse("::1").to_string(), "::1");
  EXPECT_EQ(Ipv6Addr::parse("2001:10::5").to_string(), "2001:10::5");
  EXPECT_EQ(Ipv6Addr::parse("::").to_string(), "::");
  EXPECT_EQ(Ipv6Addr::parse("fe80::").to_string(), "fe80::");
}

TEST(Ipv6Addr, ParseRejectsGarbage) {
  EXPECT_THROW(Ipv6Addr::parse("1:2:3"), std::invalid_argument);
  EXPECT_THROW(Ipv6Addr::parse("1:2:3:4:5:6:7:8:9"), std::invalid_argument);
  EXPECT_THROW(Ipv6Addr::parse("12345::1"), std::invalid_argument);
}

TEST(Ipv6Addr, RoundTripBytes) {
  const auto addr = Ipv6Addr::parse("2001:db8::dead:beef");
  const auto again = Ipv6Addr::from_bytes(
      crypto::BytesView(addr.bytes().data(), addr.bytes().size()));
  EXPECT_EQ(addr, again);
  EXPECT_THROW(Ipv6Addr::from_bytes(crypto::Bytes(15, 0)),
               std::invalid_argument);
}

TEST(Ipv6Addr, OrchidPrefixIsHit) {
  EXPECT_TRUE(Ipv6Addr::parse("2001:10::1").is_hit());
  EXPECT_TRUE(Ipv6Addr::parse("2001:1f:ffff::1").is_hit());
  EXPECT_FALSE(Ipv6Addr::parse("2001:20::1").is_hit());
  EXPECT_FALSE(Ipv6Addr::parse("2001:db8::1").is_hit());
}

TEST(Ipv6Addr, TeredoPrefix) {
  EXPECT_TRUE(Ipv6Addr::parse("2001:0:1234::1").is_teredo());
  EXPECT_FALSE(Ipv6Addr::parse("2001:db8::1").is_teredo());
  // HIT and Teredo prefixes are disjoint.
  EXPECT_FALSE(Ipv6Addr::parse("2001:10::1").is_teredo());
}

TEST(Ipv6Addr, ZeroDetection) {
  EXPECT_TRUE(Ipv6Addr().is_zero());
  EXPECT_FALSE(Ipv6Addr::parse("::1").is_zero());
}

TEST(IpAddr, FamilyAndKindQueries) {
  const IpAddr v4 = Ipv4Addr(10, 0, 0, 1);
  const IpAddr lsi = Ipv4Addr(1, 0, 0, 1);
  const IpAddr hit = Ipv6Addr::parse("2001:10::1");
  EXPECT_TRUE(v4.is_v4());
  EXPECT_FALSE(v4.is_v6());
  EXPECT_FALSE(v4.is_lsi());
  EXPECT_TRUE(lsi.is_lsi());
  EXPECT_TRUE(hit.is_v6());
  EXPECT_TRUE(hit.is_hit());
  EXPECT_FALSE(hit.is_lsi());
}

TEST(IpAddr, OrderingIsTotal) {
  const IpAddr a = Ipv4Addr(10, 0, 0, 1);
  const IpAddr b = Ipv4Addr(10, 0, 0, 2);
  const IpAddr c = Ipv6Addr::parse("::1");
  EXPECT_LT(a, b);
  EXPECT_NE(a, c);
  // v4 sorts before v6 (variant index order) — just needs to be stable.
  EXPECT_TRUE((a < c) ^ (c < a));
}

TEST(Endpoint, Formatting) {
  EXPECT_EQ((Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 1)), 80}).to_string(),
            "10.0.0.1:80");
  EXPECT_EQ((Endpoint{IpAddr(Ipv6Addr::parse("2001:10::1")), 443}).to_string(),
            "[2001:10::1]:443");
}

}  // namespace
}  // namespace hipcloud::net
