#include "net/shard_world.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "crypto/bytes.hpp"
#include "net/node.hpp"
#include "sim/time.hpp"

namespace hipcloud::net {
namespace {

Packet make_udp(Network& net, const IpAddr& src, const IpAddr& dst,
                std::size_t payload_len) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.proto = IpProto::kUdp;
  pkt.payload = net.buffer_pool().make(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    pkt.payload.data()[i] = static_cast<std::uint8_t>(i);
  }
  pkt.stamp_l3_overhead();
  return pkt;
}

TEST(ShardedWorld, CrossShardDeliveryTimingMatchesLinkPhysics) {
  ShardedWorld world(2, /*seed=*/7);
  Node* a = world.shard(0).add_node("a");
  Node* b = world.shard(1).add_node("b");
  const IpAddr a_addr(Ipv4Addr(10, 0, 0, 1));
  const IpAddr b_addr(Ipv4Addr(10, 1, 0, 1));

  LinkConfig cfg;
  cfg.bandwidth_bps = 1e9;
  cfg.latency = sim::from_micros(200);
  const auto att = world.connect_cross(0, a, 1, b, cfg);
  a->add_address(att.iface_a, a_addr);
  b->add_address(att.iface_b, b_addr);
  a->add_route(b_addr, 32, att.iface_a);

  constexpr std::size_t kPayload = 1000;
  sim::Time rx_time = -1;
  std::size_t rx_bytes = 0;
  b->register_protocol(IpProto::kUdp, [&](Packet&& pkt) {
    rx_time = world.shard(1).loop().now();
    rx_bytes = pkt.payload.size();
    // The payload crossed the shard seam as a pool-free copy; the bytes
    // themselves must survive intact.
    EXPECT_EQ(pkt.payload.data()[13], 13);
  });

  const sim::Time t0 = sim::from_micros(10);
  world.shard(0).loop().schedule_at(t0, [&] {
    a->send(make_udp(world.shard(0), a_addr, b_addr, kPayload));
  });
  world.run(sim::from_millis(5), /*workers=*/2);

  // Arrival = send + serialization(wire bytes at 1 Gb/s) + latency, the
  // exact same physics as an intra-shard link.
  const std::size_t wire = kPayload + 20;
  const auto serialization = static_cast<sim::Duration>(
      static_cast<double>(wire) * 8.0 / cfg.bandwidth_bps *
      static_cast<double>(sim::kSecond));
  EXPECT_EQ(rx_time, t0 + serialization + cfg.latency);
  EXPECT_EQ(rx_bytes, kPayload);
  EXPECT_EQ(att.a_to_b->delivered_packets(), 1u);
  // The sending shard charged itself for the seam copy.
  EXPECT_EQ(world.shard(0).perf().payload_bytes_copied, kPayload);
}

TEST(ShardedWorld, HashAndCountersWorkerInvariant) {
  // Ping-pong traffic across the seam at every worker count: the merged
  // determinism hash and per-shard node counters must not move.
  auto build_and_run = [](unsigned workers) {
    ShardedWorld world(2, /*seed=*/42);
    Node* a = world.shard(0).add_node("a");
    Node* b = world.shard(1).add_node("b");
    const IpAddr a_addr(Ipv4Addr(10, 0, 0, 1));
    const IpAddr b_addr(Ipv4Addr(10, 1, 0, 1));
    LinkConfig cfg;
    cfg.latency = sim::from_micros(120);
    const auto att = world.connect_cross(0, a, 1, b, cfg);
    a->add_address(att.iface_a, a_addr);
    b->add_address(att.iface_b, b_addr);
    a->add_route(b_addr, 32, att.iface_a);
    b->add_route(a_addr, 32, att.iface_b);

    int bounces = 0;
    b->register_protocol(IpProto::kUdp, [&, a_addr, b_addr](Packet&& pkt) {
      Packet back;
      back.src = b_addr;
      back.dst = a_addr;
      back.proto = IpProto::kUdp;
      back.payload = std::move(pkt.payload);
      back.stamp_l3_overhead();
      b->send(std::move(back));
    });
    a->register_protocol(IpProto::kUdp, [&](Packet&& pkt) {
      ++bounces;
      if (bounces < 8) {
        Packet again;
        again.src = pkt.dst;
        again.dst = pkt.src;
        again.proto = IpProto::kUdp;
        again.payload = std::move(pkt.payload);
        again.stamp_l3_overhead();
        a->send(std::move(again));
      }
    });
    world.shard(0).loop().schedule_at(sim::from_micros(1), [&] {
      Packet first;
      first.src = a_addr;
      first.dst = b_addr;
      first.proto = IpProto::kUdp;
      first.payload = world.shard(0).buffer_pool().make(256);
      first.stamp_l3_overhead();
      a->send(std::move(first));
    });
    world.run(sim::from_millis(20), workers);
    return std::tuple{world.world_hash(), world.merged_perf().events_fired,
                      bounces, a->sent_packets(), b->received_packets()};
  };

  const auto base = build_and_run(1);
  EXPECT_EQ(std::get<2>(base), 8);
  EXPECT_EQ(build_and_run(2), base);
  EXPECT_EQ(build_and_run(4), base);
}

TEST(ShardedWorld, RejectsSameShardAndZeroLatencyCrossLinks) {
  ShardedWorld world(2);
  Node* a = world.shard(0).add_node("a");
  Node* a2 = world.shard(0).add_node("a2");
  Node* b = world.shard(1).add_node("b");
  LinkConfig zero;
  zero.latency = 0;
  EXPECT_ANY_THROW(world.connect_cross(0, a, 0, a2, LinkConfig{}));
  EXPECT_ANY_THROW(world.connect_cross(0, a, 1, b, zero));
}

TEST(ShardedWorld, LookaheadTracksSmallestCrossLatency) {
  ShardedWorld world(3);
  Node* a = world.shard(0).add_node("a");
  Node* b = world.shard(1).add_node("b");
  Node* c = world.shard(2).add_node("c");
  LinkConfig slow;
  slow.latency = sim::from_millis(2);
  LinkConfig fast;
  fast.latency = sim::from_micros(30);
  world.connect_cross(0, a, 1, b, slow);
  EXPECT_EQ(world.coordinator().lookahead(), slow.latency);
  world.connect_cross(1, b, 2, c, fast);
  EXPECT_EQ(world.coordinator().lookahead(), fast.latency);
}

TEST(ShardedWorld, ConnectCrossRegistersPerPairLookaheadBothWays) {
  ShardedWorld world(3);
  Node* a = world.shard(0).add_node("a");
  Node* b = world.shard(1).add_node("b");
  Node* c = world.shard(2).add_node("c");
  LinkConfig slow;
  slow.latency = sim::from_millis(2);
  LinkConfig fast;
  fast.latency = sim::from_micros(30);
  world.connect_cross(0, a, 1, b, slow);
  world.connect_cross(1, b, 2, c, fast);
  auto& coord = world.coordinator();
  // Each seam keeps its own channel lookahead, in both directions; the
  // never-connected (0,2) seam has none and carries no traffic.
  EXPECT_EQ(coord.pair_lookahead(0, 1), slow.latency);
  EXPECT_EQ(coord.pair_lookahead(1, 0), slow.latency);
  EXPECT_EQ(coord.pair_lookahead(1, 2), fast.latency);
  EXPECT_EQ(coord.pair_lookahead(2, 1), fast.latency);
  EXPECT_EQ(coord.pair_lookahead(0, 2), sim::Duration{-1});
  EXPECT_TRUE(coord.registered_pairs_only());
  // A second, faster link on an existing seam shrinks just that pair —
  // the dynamic-link-addition contract.
  LinkConfig faster;
  faster.latency = sim::from_micros(400);
  world.connect_cross(0, a, 1, b, faster);
  EXPECT_EQ(coord.pair_lookahead(0, 1), faster.latency);
  EXPECT_EQ(coord.pair_lookahead(1, 0), faster.latency);
  EXPECT_EQ(coord.pair_lookahead(1, 2), fast.latency);
}

}  // namespace
}  // namespace hipcloud::net
