#include "net/nat.hpp"

#include <gtest/gtest.h>

#include "net/icmp.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"

namespace hipcloud::net {
namespace {

/// client (192.168.0.2) -- natbox -- server (8.0.0.10)
/// NAT public pool address: 8.0.0.1 (not owned by the nat node).
struct NattedTopo {
  Network net;
  Node* client;
  Node* natbox;
  Node* server;
  std::unique_ptr<Nat> nat;

  explicit NattedTopo(std::uint64_t seed = 1) : net(seed) {
    client = net.add_node("client");
    natbox = net.add_node("natbox");
    server = net.add_node("server");
    const auto inside = net.connect(client, natbox, {});
    const auto outside = net.connect(natbox, server, {});
    client->add_address(inside.iface_a, Ipv4Addr(192, 168, 0, 2));
    natbox->add_address(inside.iface_b, Ipv4Addr(192, 168, 0, 1));
    natbox->add_address(outside.iface_a, Ipv4Addr(8, 0, 0, 254));
    server->add_address(outside.iface_b, Ipv4Addr(8, 0, 0, 10));
    client->set_default_route(inside.iface_a);
    server->set_default_route(outside.iface_b);  // via natbox for 8.0.0.1
    natbox->add_route(IpAddr(Ipv4Addr(192, 168, 0, 0)), 24, inside.iface_b);
    natbox->set_default_route(outside.iface_a);
    nat = std::make_unique<Nat>(natbox, inside.iface_b, outside.iface_a,
                                Ipv4Addr(8, 0, 0, 1));
  }
};

TEST(Nat, UdpOutboundIsTranslated) {
  NattedTopo topo;
  UdpStack uc(topo.client), us(topo.server);
  Endpoint seen_src{};
  us.bind(5353, [&](const Endpoint& from, const IpAddr&, crypto::Bytes) {
    seen_src = from;
  });
  uc.send(4000, Endpoint{IpAddr(Ipv4Addr(8, 0, 0, 10)), 5353},
          crypto::to_bytes("x"));
  topo.net.loop().run();
  EXPECT_EQ(seen_src.addr, IpAddr(Ipv4Addr(8, 0, 0, 1)));
  EXPECT_NE(seen_src.port, 4000);  // remapped
  EXPECT_EQ(topo.nat->active_mappings(), 1u);
}

TEST(Nat, UdpReplyComesBackThroughMapping) {
  NattedTopo topo;
  UdpStack uc(topo.client), us(topo.server);
  crypto::Bytes client_got;
  uc.bind(4000, [&](const Endpoint&, const IpAddr&, crypto::Bytes data) {
    client_got = std::move(data);
  });
  us.bind(5353, [&](const Endpoint& from, const IpAddr&, crypto::Bytes) {
    us.send(5353, from, crypto::to_bytes("reply"));
  });
  uc.send(4000, Endpoint{IpAddr(Ipv4Addr(8, 0, 0, 10)), 5353},
          crypto::to_bytes("ping"));
  topo.net.loop().run();
  EXPECT_EQ(client_got, crypto::to_bytes("reply"));
}

TEST(Nat, MappingIsStableAcrossDatagrams) {
  NattedTopo topo;
  UdpStack uc(topo.client), us(topo.server);
  std::vector<std::uint16_t> seen_ports;
  us.bind(5353, [&](const Endpoint& from, const IpAddr&, crypto::Bytes) {
    seen_ports.push_back(from.port);
  });
  for (int i = 0; i < 3; ++i) {
    uc.send(4000, Endpoint{IpAddr(Ipv4Addr(8, 0, 0, 10)), 5353},
            crypto::Bytes(1, 0));
  }
  topo.net.loop().run();
  ASSERT_EQ(seen_ports.size(), 3u);
  EXPECT_EQ(seen_ports[0], seen_ports[1]);
  EXPECT_EQ(seen_ports[1], seen_ports[2]);
  EXPECT_EQ(topo.nat->active_mappings(), 1u);
}

TEST(Nat, DistinctInsidePortsGetDistinctMappings) {
  NattedTopo topo;
  UdpStack uc(topo.client), us(topo.server);
  std::vector<std::uint16_t> seen_ports;
  us.bind(5353, [&](const Endpoint& from, const IpAddr&, crypto::Bytes) {
    seen_ports.push_back(from.port);
  });
  uc.send(4000, Endpoint{IpAddr(Ipv4Addr(8, 0, 0, 10)), 5353},
          crypto::Bytes(1, 0));
  uc.send(4001, Endpoint{IpAddr(Ipv4Addr(8, 0, 0, 10)), 5353},
          crypto::Bytes(1, 0));
  topo.net.loop().run();
  ASSERT_EQ(seen_ports.size(), 2u);
  EXPECT_NE(seen_ports[0], seen_ports[1]);
  EXPECT_EQ(topo.nat->active_mappings(), 2u);
}

TEST(Nat, UnsolicitedInboundIsDropped) {
  NattedTopo topo;
  UdpStack uc(topo.client), us(topo.server);
  int client_got = 0;
  uc.bind(4000, [&](const Endpoint&, const IpAddr&, crypto::Bytes) {
    ++client_got;
  });
  // Server fires at the NAT's public address with no mapping existing.
  us.send(9999, Endpoint{IpAddr(Ipv4Addr(8, 0, 0, 1)), 4000},
          crypto::to_bytes("unsolicited"));
  topo.net.loop().run();
  EXPECT_EQ(client_got, 0);
}

TEST(Nat, TcpThroughNat) {
  NattedTopo topo;
  TcpStack tc(topo.client), ts(topo.server);
  crypto::Bytes at_server, at_client;
  ts.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data([&, c = conn.get()](crypto::Bytes data) {
      at_server = std::move(data);
      c->send(crypto::to_bytes("OK"));
    });
  });
  auto conn = tc.connect(Endpoint{IpAddr(Ipv4Addr(8, 0, 0, 10)), 80});
  conn->on_connect([&] { conn->send(crypto::to_bytes("GET /")); });
  conn->on_data([&](crypto::Bytes data) { at_client = std::move(data); });
  topo.net.loop().run();
  EXPECT_EQ(at_server, crypto::to_bytes("GET /"));
  EXPECT_EQ(at_client, crypto::to_bytes("OK"));
}

TEST(Nat, IcmpEchoThroughNat) {
  NattedTopo topo;
  IcmpStack ic(topo.client), is(topo.server);
  bool done = false;
  ic.ping(IpAddr(Ipv4Addr(8, 0, 0, 10)), 5, sim::from_millis(1), 32,
          [&](const sim::Summary& rtts, int lost) {
            done = true;
            EXPECT_EQ(lost, 0);
            EXPECT_EQ(rtts.count(), 5u);
          });
  topo.net.loop().run();
  EXPECT_TRUE(done);
}

// Regression: transport payloads too short to carry their port fields
// must be dropped untranslated. The port writers re-check the payload
// size before indexing — without those guards a truncated datagram that
// slipped past read_ports would mean out-of-bounds writes into pooled
// memory (caught by ASan in this suite's default build).
TEST(Nat, TruncatedTransportPayloadDropped) {
  NattedTopo topo;
  int server_got = 0;
  for (const auto proto :
       {IpProto::kUdp, IpProto::kTcp, IpProto::kIcmp}) {
    topo.server->register_protocol(proto, [&](Packet&&) { ++server_got; });
  }
  for (const auto proto :
       {IpProto::kUdp, IpProto::kTcp, IpProto::kIcmp}) {
    for (std::size_t n = 0; n < 4; ++n) {
      Packet pkt;
      pkt.src = IpAddr(Ipv4Addr(192, 168, 0, 2));
      pkt.dst = IpAddr(Ipv4Addr(8, 0, 0, 10));
      pkt.proto = proto;
      pkt.payload = crypto::Bytes(n, 0xab);
      pkt.stamp_l3_overhead();
      topo.client->send(std::move(pkt));
    }
  }
  topo.net.loop().run();
  EXPECT_EQ(server_got, 0);
  EXPECT_EQ(topo.nat->active_mappings(), 0u);
}

}  // namespace
}  // namespace hipcloud::net
