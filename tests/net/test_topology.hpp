#pragma once

// Shared mini-topologies for network-layer tests.

#include "net/link.hpp"
#include "net/node.hpp"

namespace hipcloud::net::testing {

/// Two hosts on a direct link:
///   a (10.0.0.1) ----- b (10.0.0.2)
struct TwoHosts {
  Network net;
  Node* a;
  Node* b;

  explicit TwoHosts(const LinkConfig& link = {}, std::uint64_t seed = 1)
      : net(seed) {
    a = net.add_node("a");
    b = net.add_node("b");
    const auto att = net.connect(a, b, link);
    a->add_address(att.iface_a, Ipv4Addr(10, 0, 0, 1));
    b->add_address(att.iface_b, Ipv4Addr(10, 0, 0, 2));
    a->set_default_route(att.iface_a);
    b->set_default_route(att.iface_b);
  }
};

/// Two hosts behind a router:
///   a (10.0.1.1) -- r -- b (10.0.2.1)
struct RoutedPair {
  Network net;
  Node* a;
  Node* r;
  Node* b;

  explicit RoutedPair(const LinkConfig& left = {}, const LinkConfig& right = {},
                      std::uint64_t seed = 1)
      : net(seed) {
    a = net.add_node("a");
    r = net.add_node("r");
    b = net.add_node("b");
    const auto la = net.connect(a, r, left);
    const auto lb = net.connect(r, b, right);
    a->add_address(la.iface_a, Ipv4Addr(10, 0, 1, 1));
    r->add_address(la.iface_b, Ipv4Addr(10, 0, 1, 254));
    r->add_address(lb.iface_a, Ipv4Addr(10, 0, 2, 254));
    b->add_address(lb.iface_b, Ipv4Addr(10, 0, 2, 1));
    a->set_default_route(la.iface_a);
    b->set_default_route(lb.iface_b);
    r->add_route(IpAddr(Ipv4Addr(10, 0, 1, 0)), 24, la.iface_b);
    r->add_route(IpAddr(Ipv4Addr(10, 0, 2, 0)), 24, lb.iface_a);
    r->set_forwarding(true);
  }
};

}  // namespace hipcloud::net::testing
