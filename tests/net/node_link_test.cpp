#include <gtest/gtest.h>

#include "net/icmp.hpp"
#include "net/udp.hpp"
#include "test_topology.hpp"

namespace hipcloud::net {
namespace {

using testing::RoutedPair;
using testing::TwoHosts;

TEST(NodeLink, UdpDatagramArrives) {
  TwoHosts topo;
  UdpStack ua(topo.a), ub(topo.b);
  crypto::Bytes received;
  Endpoint from{};
  ub.bind(7000, [&](const Endpoint& src, const IpAddr&, crypto::Bytes data) {
    from = src;
    received = std::move(data);
  });
  ua.send(5000, Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 7000},
          crypto::to_bytes("hello"));
  topo.net.loop().run();
  EXPECT_EQ(received, crypto::to_bytes("hello"));
  EXPECT_EQ(from.addr, IpAddr(Ipv4Addr(10, 0, 0, 1)));
  EXPECT_EQ(from.port, 5000);
}

TEST(NodeLink, LatencyIsCharged) {
  LinkConfig link;
  link.latency = sim::from_millis(5);
  link.bandwidth_bps = 1e12;  // effectively zero serialization
  TwoHosts topo(link);
  UdpStack ua(topo.a), ub(topo.b);
  sim::Time arrival = -1;
  ub.bind(7000, [&](const Endpoint&, const IpAddr&, crypto::Bytes) {
    arrival = topo.net.loop().now();
  });
  ua.send(5000, Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 7000},
          crypto::Bytes(10, 0));
  topo.net.loop().run();
  EXPECT_GE(arrival, sim::from_millis(5));
  EXPECT_LT(arrival, sim::from_millis(6));
}

TEST(NodeLink, SerializationDelayScalesWithSize) {
  LinkConfig link;
  link.latency = 0;
  link.bandwidth_bps = 8e6;  // 1 byte per microsecond
  TwoHosts topo(link);
  UdpStack ua(topo.a), ub(topo.b);
  sim::Time arrival = -1;
  ub.bind(7000, [&](const Endpoint&, const IpAddr&, crypto::Bytes) {
    arrival = topo.net.loop().now();
  });
  // 972 data + 8 UDP + 20 IP = 1000 bytes => 1000 us on the wire.
  ua.send(5000, Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 7000},
          crypto::Bytes(972, 0));
  topo.net.loop().run();
  EXPECT_EQ(arrival, sim::from_micros(1000));
}

TEST(NodeLink, QueueOverflowDrops) {
  LinkConfig link;
  link.bandwidth_bps = 8e6;
  link.max_queue_delay = sim::from_micros(1500);  // fits one extra packet
  TwoHosts topo(link);
  UdpStack ua(topo.a), ub(topo.b);
  int received = 0;
  ub.bind(7000, [&](const Endpoint&, const IpAddr&, crypto::Bytes) {
    ++received;
  });
  // Each packet takes 1000us to serialize; sending 5 back-to-back can
  // queue at most ~2 (in-flight + one 1000us-deep queue entry).
  for (int i = 0; i < 5; ++i) {
    ua.send(5000, Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 7000},
            crypto::Bytes(972, 0));
  }
  topo.net.loop().run();
  EXPECT_LT(received, 5);
  EXPECT_GE(received, 1);
}

TEST(NodeLink, RandomLossDropsSomePackets) {
  LinkConfig link;
  link.loss_rate = 0.5;
  TwoHosts topo(link, /*seed=*/7);
  UdpStack ua(topo.a), ub(topo.b);
  int received = 0;
  ub.bind(7000, [&](const Endpoint&, const IpAddr&, crypto::Bytes) {
    ++received;
  });
  for (int i = 0; i < 100; ++i) {
    topo.net.loop().schedule(i * sim::kMillisecond, [&] {
      ua.send(5000, Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 7000},
              crypto::Bytes(8, 0));
    });
  }
  topo.net.loop().run();
  EXPECT_GT(received, 20);
  EXPECT_LT(received, 80);
}

TEST(NodeLink, MtuViolationDrops) {
  TwoHosts topo;
  UdpStack ua(topo.a), ub(topo.b);
  int received = 0;
  ub.bind(7000, [&](const Endpoint&, const IpAddr&, crypto::Bytes) {
    ++received;
  });
  ua.send(5000, Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 7000},
          crypto::Bytes(2000, 0));
  topo.net.loop().run();
  EXPECT_EQ(received, 0);
}

TEST(NodeLink, RoutingThroughRouter) {
  RoutedPair topo;
  UdpStack ua(topo.a), ub(topo.b);
  crypto::Bytes received;
  ub.bind(7000, [&](const Endpoint&, const IpAddr&, crypto::Bytes data) {
    received = std::move(data);
  });
  ua.send(5000, Endpoint{IpAddr(Ipv4Addr(10, 0, 2, 1)), 7000},
          crypto::to_bytes("via router"));
  topo.net.loop().run();
  EXPECT_EQ(received, crypto::to_bytes("via router"));
  EXPECT_EQ(topo.r->forwarded_packets(), 1u);
}

TEST(NodeLink, NonForwardingNodeDropsTransit) {
  RoutedPair topo;
  topo.r->set_forwarding(false);
  UdpStack ua(topo.a), ub(topo.b);
  int received = 0;
  ub.bind(7000, [&](const Endpoint&, const IpAddr&, crypto::Bytes) {
    ++received;
  });
  ua.send(5000, Endpoint{IpAddr(Ipv4Addr(10, 0, 2, 1)), 7000},
          crypto::Bytes(4, 0));
  topo.net.loop().run();
  EXPECT_EQ(received, 0);
}

TEST(NodeLink, NoRouteIncrementsCounter) {
  Network net;
  Node* lonely = net.add_node("lonely");  // no links, no routes
  const auto iface = lonely->add_virtual_interface();
  lonely->add_address(iface, Ipv4Addr(10, 9, 9, 9));
  UdpStack u(lonely);
  u.send(5000, Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 1)), 7000},
         crypto::Bytes(4, 0));
  net.loop().run();
  EXPECT_EQ(lonely->dropped_no_route(), 1u);
}

TEST(NodeLink, LoopbackDelivery) {
  TwoHosts topo;
  UdpStack ua(topo.a);
  crypto::Bytes received;
  ua.bind(7000, [&](const Endpoint&, const IpAddr&, crypto::Bytes data) {
    received = std::move(data);
  });
  ua.send(5000, Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 1)), 7000},
          crypto::to_bytes("self"));
  topo.net.loop().run();
  EXPECT_EQ(received, crypto::to_bytes("self"));
}

TEST(NodeLink, SelectSourcePrefersKindMatch) {
  TwoHosts topo;
  const auto iface = topo.a->add_virtual_interface();
  topo.a->add_address(iface, Ipv4Addr(1, 0, 0, 1));               // LSI
  topo.a->add_address(iface, Ipv6Addr::parse("2001:10::1"));      // HIT
  topo.a->add_address(iface, Ipv6Addr::parse("2001:db8::1"));     // plain v6
  EXPECT_EQ(topo.a->select_source(IpAddr(Ipv4Addr(1, 0, 0, 9))),
            std::optional<IpAddr>(IpAddr(Ipv4Addr(1, 0, 0, 1))));
  EXPECT_EQ(topo.a->select_source(IpAddr(Ipv6Addr::parse("2001:10::9"))),
            std::optional<IpAddr>(IpAddr(Ipv6Addr::parse("2001:10::1"))));
  EXPECT_EQ(topo.a->select_source(IpAddr(Ipv6Addr::parse("2001:db8::9"))),
            std::optional<IpAddr>(IpAddr(Ipv6Addr::parse("2001:db8::1"))));
  EXPECT_EQ(topo.a->select_source(IpAddr(Ipv4Addr(10, 0, 0, 2))),
            std::optional<IpAddr>(IpAddr(Ipv4Addr(10, 0, 0, 1))));
}

TEST(Ping, MeasuresRtt) {
  LinkConfig link;
  link.latency = sim::from_millis(2);
  link.bandwidth_bps = 1e12;
  TwoHosts topo(link);
  IcmpStack ia(topo.a), ib(topo.b);
  bool done = false;
  ia.ping(IpAddr(Ipv4Addr(10, 0, 0, 2)), 20, sim::from_millis(10), 56,
          [&](const sim::Summary& rtts, int lost) {
            done = true;
            EXPECT_EQ(lost, 0);
            EXPECT_EQ(rtts.count(), 20u);
            EXPECT_NEAR(rtts.mean(), 4.0, 0.2);  // 2ms each way
          });
  topo.net.loop().run();
  EXPECT_TRUE(done);
}

TEST(Ping, ReportsLossOnDeadPeer) {
  TwoHosts topo;
  IcmpStack ia(topo.a);  // b has no ICMP stack -> no replies
  bool done = false;
  ia.ping(IpAddr(Ipv4Addr(10, 0, 0, 2)), 3, sim::from_millis(1), 8,
          [&](const sim::Summary& rtts, int lost) {
            done = true;
            EXPECT_EQ(lost, 3);
            EXPECT_EQ(rtts.count(), 0u);
          });
  topo.net.loop().run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace hipcloud::net
