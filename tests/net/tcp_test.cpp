#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include "test_topology.hpp"

namespace hipcloud::net {
namespace {

using crypto::Bytes;
using testing::TwoHosts;

constexpr std::uint16_t kPort = 8080;
const IpAddr kAddrB = Ipv4Addr(10, 0, 0, 2);

TEST(TcpHeader, SerializeParseRoundTrip) {
  TcpHeader h;
  h.src_port = 1111;
  h.dst_port = 80;
  h.seq = 0xdeadbeef;
  h.ack = 0xcafebabe;
  h.syn = true;
  h.ack_flag = true;
  h.window = 87380;
  const Bytes wire = h.serialize(crypto::to_bytes("payload"));
  EXPECT_EQ(wire.size(), TcpHeader::kSize + 7);
  Bytes data;
  const TcpHeader back = TcpHeader::parse(wire, data);
  EXPECT_EQ(back.src_port, 1111);
  EXPECT_EQ(back.dst_port, 80);
  EXPECT_EQ(back.seq, 0xdeadbeef);
  EXPECT_EQ(back.ack, 0xcafebabe);
  EXPECT_TRUE(back.syn);
  EXPECT_TRUE(back.ack_flag);
  EXPECT_FALSE(back.fin);
  EXPECT_FALSE(back.rst);
  EXPECT_EQ(back.window, 87380u);
  EXPECT_EQ(data, crypto::to_bytes("payload"));
}

TEST(TcpHeader, ParseRejectsTruncated) {
  Bytes data;
  EXPECT_THROW(TcpHeader::parse(Bytes(19, 0), data), std::runtime_error);
}

TEST(Tcp, ConnectHandshake) {
  TwoHosts topo;
  TcpStack sa(topo.a), sb(topo.b);
  bool accepted = false, connected = false;
  sb.listen(kPort, [&](std::shared_ptr<TcpConnection> conn) {
    accepted = true;
    // hipcheck:allow(self-capture): TcpStack::drop_handlers breaks the cycle at teardown
    conn->on_connect([&, conn] { EXPECT_TRUE(conn->established()); });
  });
  auto client = sa.connect(Endpoint{kAddrB, kPort});
  client->on_connect([&] { connected = true; });
  topo.net.loop().run();
  EXPECT_TRUE(accepted);
  EXPECT_TRUE(connected);
  EXPECT_TRUE(client->established());
}

TEST(Tcp, ConnectToClosedPortTimesOutSilently) {
  TwoHosts topo;
  TcpStack sa(topo.a), sb(topo.b);
  bool connected = false;
  auto client = sa.connect(Endpoint{kAddrB, 9999});
  client->on_connect([&] { connected = true; });
  topo.net.loop().run(10 * sim::kSecond);
  EXPECT_FALSE(connected);
  EXPECT_FALSE(client->established());
}

TEST(Tcp, SmallDataBothDirections) {
  TwoHosts topo;
  TcpStack sa(topo.a), sb(topo.b);
  Bytes at_server, at_client;
  sb.listen(kPort, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data([&, c = conn.get()](Bytes data) {
      at_server.insert(at_server.end(), data.begin(), data.end());
      c->send(crypto::to_bytes("pong"));
    });
  });
  auto client = sa.connect(Endpoint{kAddrB, kPort});
  client->on_connect([&] { client->send(crypto::to_bytes("ping")); });
  client->on_data([&](Bytes data) {
    at_client.insert(at_client.end(), data.begin(), data.end());
  });
  topo.net.loop().run();
  EXPECT_EQ(at_server, crypto::to_bytes("ping"));
  EXPECT_EQ(at_client, crypto::to_bytes("pong"));
}

TEST(Tcp, LargeTransferIsComplete) {
  TwoHosts topo;
  TcpStack sa(topo.a), sb(topo.b);
  constexpr std::size_t kTotal = 500000;
  std::size_t received = 0;
  std::uint8_t expected = 0;
  bool corrupt = false;
  sb.listen(kPort, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data([&](Bytes data) {
      for (std::uint8_t b : data) {
        if (b != expected++) corrupt = true;
      }
      received += data.size();
    });
  });
  auto client = sa.connect(Endpoint{kAddrB, kPort});
  client->on_connect([&] {
    Bytes data(kTotal);
    std::uint8_t v = 0;
    for (auto& b : data) b = v++;
    client->send(std::move(data));
  });
  topo.net.loop().run();
  EXPECT_EQ(received, kTotal);
  EXPECT_FALSE(corrupt);
}

TEST(Tcp, TransferSurvivesLoss) {
  LinkConfig link;
  link.loss_rate = 0.02;
  TwoHosts topo(link, /*seed=*/11);
  TcpStack sa(topo.a), sb(topo.b);
  constexpr std::size_t kTotal = 100000;
  std::size_t received = 0;
  sb.listen(kPort, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data([&](Bytes data) { received += data.size(); });
  });
  auto client = sa.connect(Endpoint{kAddrB, kPort});
  client->on_connect([&] { client->send(Bytes(kTotal, 0x5a)); });
  topo.net.loop().run(120 * sim::kSecond);
  EXPECT_EQ(received, kTotal);
  EXPECT_GT(client->retransmissions(), 0u);
}

TEST(Tcp, ThroughputIsWindowLimited) {
  // With a 16 KB window and 10 ms RTT, throughput must sit near
  // win/RTT = 1.6 MB/s despite a 1 Gbit/s link.
  LinkConfig link;
  link.latency = sim::from_millis(5);  // 10 ms RTT
  link.bandwidth_bps = 1e9;
  TwoHosts topo(link);
  TcpConfig cfg;
  cfg.receive_window = 16384;
  TcpStack sa(topo.a, cfg), sb(topo.b, cfg);
  std::size_t received = 0;
  sim::Time last_arrival = 0;
  sb.listen(kPort, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data([&](Bytes data) {
      received += data.size();
      last_arrival = topo.net.loop().now();
    });
  });
  auto client = sa.connect(Endpoint{kAddrB, kPort});
  constexpr std::size_t kTotal = 4 * 1024 * 1024;
  client->on_connect([&] { client->send(Bytes(kTotal, 1)); });
  topo.net.loop().run(60 * sim::kSecond);
  ASSERT_EQ(received, kTotal);
  // Completion time should be near kTotal / (win/RTT) = 2.56 s.
  const double rate =
      static_cast<double>(kTotal) / sim::to_seconds(last_arrival);
  EXPECT_GT(rate, 1.2e6);
  EXPECT_LT(rate, 2.2e6);
}

TEST(Tcp, ThroughputIsBandwidthLimitedOnFatWindow) {
  LinkConfig link;
  link.latency = sim::from_micros(100);
  link.bandwidth_bps = 80e6;  // 10 MB/s
  TwoHosts topo(link);
  TcpStack sa(topo.a), sb(topo.b);
  std::size_t received = 0;
  sim::Time last_arrival = 0;
  sb.listen(kPort, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data([&](Bytes data) {
      received += data.size();
      last_arrival = topo.net.loop().now();
    });
  });
  auto client = sa.connect(Endpoint{kAddrB, kPort});
  constexpr std::size_t kTotal = 2 * 1024 * 1024;
  client->on_connect([&] { client->send(Bytes(kTotal, 1)); });
  topo.net.loop().run(60 * sim::kSecond);
  ASSERT_EQ(received, kTotal);
  const double rate = static_cast<double>(kTotal) / sim::to_seconds(last_arrival);
  EXPECT_GT(rate, 7e6);    // within ~30% of the 10 MB/s wire limit
  EXPECT_LT(rate, 10.5e6);
}

TEST(Tcp, CleanCloseBothSides) {
  TwoHosts topo;
  TcpStack sa(topo.a), sb(topo.b);
  bool server_closed = false, client_closed = false;
  std::shared_ptr<TcpConnection> server_conn;
  sb.listen(kPort, [&](std::shared_ptr<TcpConnection> conn) {
    server_conn = conn;
    conn->on_data([&, c = conn.get()](Bytes) { c->close(); });
    conn->on_close([&] { server_closed = true; });
  });
  auto client = sa.connect(Endpoint{kAddrB, kPort});
  client->on_connect([&] { client->send(crypto::to_bytes("bye")); });
  client->on_close([&] {
    client_closed = true;
    client->close();  // close our side in response to FIN
  });
  topo.net.loop().run();
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(client->state(), TcpConnection::State::kClosed);
}

TEST(Tcp, DataQueuedBeforeCloseIsDelivered) {
  TwoHosts topo;
  TcpStack sa(topo.a), sb(topo.b);
  std::size_t received = 0;
  sb.listen(kPort, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data([&](Bytes data) { received += data.size(); });
  });
  auto client = sa.connect(Endpoint{kAddrB, kPort});
  client->on_connect([&] {
    client->send(Bytes(100000, 7));
    client->close();  // FIN must wait for the send buffer to drain
  });
  topo.net.loop().run();
  EXPECT_EQ(received, 100000u);
}

TEST(Tcp, ResetTearsDownPeer) {
  TwoHosts topo;
  TcpStack sa(topo.a), sb(topo.b);
  bool server_closed = false;
  sb.listen(kPort, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_close([&] { server_closed = true; });
  });
  auto client = sa.connect(Endpoint{kAddrB, kPort});
  client->on_connect([&] { client->reset(); });
  topo.net.loop().run();
  EXPECT_TRUE(server_closed);
}

TEST(Tcp, MssReflectsAddressFamily) {
  TwoHosts topo;
  TcpStack sa(topo.a), sb(topo.b);
  sb.listen(kPort, [](std::shared_ptr<TcpConnection>) {});
  auto v4conn = sa.connect(Endpoint{kAddrB, kPort});
  EXPECT_EQ(v4conn->mss(), 1460u);  // 1500 - 20 - 20
  topo.net.loop().run();
}

TEST(Tcp, ConcurrentConnectionsAreIsolated) {
  TwoHosts topo;
  TcpStack sa(topo.a), sb(topo.b);
  std::map<int, Bytes> server_rx;
  int next_id = 0;
  sb.listen(kPort, [&](std::shared_ptr<TcpConnection> conn) {
    const int id = next_id++;
    conn->on_data([&, id](Bytes data) {
      server_rx[id].insert(server_rx[id].end(), data.begin(), data.end());
    });
  });
  std::vector<std::shared_ptr<TcpConnection>> clients;
  for (int i = 0; i < 10; ++i) {
    auto c = sa.connect(Endpoint{kAddrB, kPort});
    c->on_connect([c = c.get(), i] {
      c->send(Bytes(100 + static_cast<std::size_t>(i),
                    static_cast<std::uint8_t>(i)));
    });
    clients.push_back(std::move(c));
  }
  topo.net.loop().run();
  ASSERT_EQ(server_rx.size(), 10u);
  // Each connection received a uniform buffer of a single byte value.
  for (const auto& [id, data] : server_rx) {
    ASSERT_FALSE(data.empty());
    const std::uint8_t v = data[0];
    EXPECT_EQ(data.size(), 100u + v);
    for (std::uint8_t b : data) EXPECT_EQ(b, v);
  }
}

TEST(Tcp, RetransmissionTimerRecoversFromTotalBlackout) {
  // Drop everything for the first 300 ms, then heal the link: the SYN
  // retransmit must eventually establish the connection.
  LinkConfig link;
  TwoHosts topo(link, 3);
  TcpStack sa(topo.a), sb(topo.b);
  bool connected = false;
  // Blackout by detaching the listener until t=300ms.
  topo.net.loop().schedule(sim::from_millis(300), [&] {
    sb.listen(kPort, [](std::shared_ptr<TcpConnection>) {});
  });
  auto client = sa.connect(Endpoint{kAddrB, kPort});
  client->on_connect([&] { connected = true; });
  topo.net.loop().run(30 * sim::kSecond);
  EXPECT_TRUE(connected);
}

}  // namespace
}  // namespace hipcloud::net
