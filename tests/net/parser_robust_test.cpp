// Wire-parser robustness suite: every parser that consumes
// network-controlled bytes must survive (a) every truncation prefix of a
// valid golden message and (b) a DRBG-seeded byte-flip mutation corpus,
// without undefined behaviour — the suite runs under ASan/UBSan in the
// default build. "Survive" means return a value, return nullopt, or
// throw std::runtime_error; anything else (crash, OOB read, hang) is the
// bug class the wire::Reader migration and the flow-wire-* analyzer
// exist to prevent. Fully deterministic: no wall clock, no rand() — the
// mutation stream comes from HmacDrbg with fixed seeds.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/database.hpp"
#include "crypto/drbg.hpp"
#include "hip/wire.hpp"
#include "net/packet.hpp"
#include "net/tcp.hpp"
#include "tls/cert.hpp"

namespace hipcloud {
namespace {

using crypto::Bytes;
using crypto::BytesView;

/// One parser under test: a name for diagnostics, a golden serialized
/// message, and an adapter that invokes the parser on arbitrary bytes.
struct ParserCase {
  std::string name;
  Bytes golden;
  std::function<void(BytesView)> parse;
};

std::vector<ParserCase> parser_cases() {
  std::vector<ParserCase> cases;

  {
    net::Packet pkt;
    pkt.src = net::IpAddr(net::Ipv6Addr::parse("2001:db8::1"));
    pkt.dst = net::IpAddr(net::Ipv6Addr::parse("2001:db8::2"));
    pkt.proto = net::IpProto::kUdp;
    pkt.payload = crypto::to_bytes("ipv6 payload bytes");
    cases.push_back({"parse_ipv6", net::serialize_ipv6(pkt),
                     [](BytesView w) { net::parse_ipv6(w); }});
  }
  {
    net::UdpSegment seg;
    seg.src_port = 4000;
    seg.dst_port = 53;
    seg.data = crypto::to_bytes("udp body");
    cases.push_back({"UdpSegment::parse", seg.serialize(),
                     [](BytesView w) { net::UdpSegment::parse(w); }});
  }
  {
    net::IcmpEcho echo;
    echo.is_reply = false;
    echo.ident = 0x1234;
    echo.seq = 7;
    echo.data = crypto::to_bytes("ping ping ping");
    cases.push_back({"IcmpEcho::parse", echo.serialize(),
                     [](BytesView w) { net::IcmpEcho::parse(w); }});
  }
  {
    net::TcpHeader h;
    h.src_port = 30000;
    h.dst_port = 443;
    h.seq = 0x01020304;
    h.ack = 0x0a0b0c0d;
    h.syn = true;
    h.ack_flag = true;
    h.window = 65535;
    cases.push_back({"TcpHeader::parse",
                     h.serialize(crypto::to_bytes("segment payload")),
                     [](BytesView w) {
                       Bytes body;
                       net::TcpHeader::parse(w, body);
                     }});
  }
  {
    hip::HipMessage msg;
    msg.type = hip::MsgType::kI2;
    msg.sender_hit = net::Ipv6Addr::parse("2001:10::aa");
    msg.receiver_hit = net::Ipv6Addr::parse("2001:10::bb");
    msg.set_param(hip::ParamType::kHostId, crypto::to_bytes("host-identity"));
    msg.set_u64(hip::ParamType::kSeq, 42);
    cases.push_back({"HipMessage::parse", msg.serialize(),
                     [](BytesView w) { hip::HipMessage::parse(w); }});
  }
  {
    tls::Certificate cert;
    cert.subject = "server.example";
    cert.issuer = "hipcloud-ca";
    cert.public_key = crypto::to_bytes("not-a-real-rsa-key-blob");
    cert.signature = crypto::to_bytes("not-a-real-signature");
    cases.push_back({"Certificate::decode", cert.encode(),
                     [](BytesView w) { tls::Certificate::decode(w); }});
  }
  {
    apps::DbResult result;
    result.ok = true;
    result.rows.emplace_back(101, crypto::to_bytes("row one"));
    result.rows.emplace_back(202, crypto::to_bytes("row two, longer"));
    cases.push_back({"DbResult::parse", result.serialize(),
                     [](BytesView w) { apps::DbResult::parse(w); }});
  }
  return cases;
}

/// Run the parser on crafted bytes; only std::runtime_error (the
/// documented malformed-input signal) may escape.
void expect_survives(const ParserCase& pc, BytesView input,
                     const std::string& what) {
  try {
    pc.parse(input);
  } catch (const std::runtime_error&) {
    // Rejecting malformed input is the correct outcome.
  } catch (...) {
    FAIL() << pc.name << ": unexpected exception type on " << what;
  }
}

TEST(ParserRobustness, GoldenMessagesParse) {
  for (const ParserCase& pc : parser_cases()) {
    EXPECT_NO_THROW(pc.parse(pc.golden)) << pc.name;
    EXPECT_FALSE(pc.golden.empty()) << pc.name;
  }
}

TEST(ParserRobustness, EveryTruncationPrefixSurvives) {
  for (const ParserCase& pc : parser_cases()) {
    for (std::size_t n = 0; n < pc.golden.size(); ++n) {
      expect_survives(pc, BytesView(pc.golden.data(), n),
                      "truncation to " + std::to_string(n) + " bytes");
    }
  }
}

TEST(ParserRobustness, ByteFlipMutationCorpusSurvives) {
  constexpr int kMutationsPerMessage = 256;
  for (const ParserCase& pc : parser_cases()) {
    // Seed the stream from the message name so corpora differ per parser
    // but never per run.
    std::uint64_t seed = 0x77697265;  // "wire"
    for (const char c : pc.name) seed = seed * 131 + static_cast<unsigned char>(c);
    crypto::HmacDrbg drbg(seed, "parser-robust");
    for (int m = 0; m < kMutationsPerMessage; ++m) {
      const Bytes pick = drbg.generate(3);
      Bytes mutated = pc.golden;
      const std::size_t at =
          (static_cast<std::size_t>(pick[0]) << 8 | pick[1]) % mutated.size();
      mutated[at] ^= static_cast<std::uint8_t>(pick[2] | 1);  // always flips
      expect_survives(pc, mutated,
                      "byte flip at " + std::to_string(at));
    }
  }
}

TEST(ParserRobustness, MutatedLengthFieldsNeverOverread) {
  // Length-field stress: force every plausible 2-byte length position in
  // each golden to extreme values — the claimed length then exceeds the
  // real buffer and the parser must reject, not over-read.
  for (const ParserCase& pc : parser_cases()) {
    for (std::size_t at = 0; at + 1 < pc.golden.size(); ++at) {
      Bytes mutated = pc.golden;
      mutated[at] = 0xff;
      mutated[at + 1] = 0xff;
      expect_survives(pc, mutated,
                      "length 0xffff at offset " + std::to_string(at));
    }
  }
}

}  // namespace
}  // namespace hipcloud
