#include "net/dns.hpp"

#include <gtest/gtest.h>

#include "test_topology.hpp"

namespace hipcloud::net {
namespace {

using testing::TwoHosts;

struct DnsTopo : TwoHosts {
  UdpStack ua{a}, ub{b};
  DnsServer server{b, &ub};
  DnsResolver resolver{a, &ua,
                       Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), kDnsPort}};
};

TEST(DnsRecord, Constructors) {
  const auto a = DnsRecord::a(Ipv4Addr(10, 1, 2, 3));
  EXPECT_EQ(a.as_a(), Ipv4Addr(10, 1, 2, 3));
  const auto aaaa = DnsRecord::aaaa(Ipv6Addr::parse("2001:db8::7"));
  EXPECT_EQ(aaaa.as_aaaa(), Ipv6Addr::parse("2001:db8::7"));
  const auto hit = Ipv6Addr::parse("2001:10::42");
  const auto hi = crypto::to_bytes("public-key-bytes");
  const auto hip = DnsRecord::hip(hit, hi);
  EXPECT_EQ(hip.hip_hit(), hit);
  EXPECT_EQ(hip.hip_host_identity(), hi);
}

TEST(DnsRecord, AccessorsRejectWrongType) {
  const auto a = DnsRecord::a(Ipv4Addr(10, 1, 2, 3));
  EXPECT_THROW(a.as_aaaa(), std::runtime_error);
  EXPECT_THROW(a.hip_hit(), std::runtime_error);
}

TEST(Dns, ResolvesARecord) {
  DnsTopo topo;
  topo.server.add_record("web1.cloud", DnsRecord::a(Ipv4Addr(10, 0, 0, 2)));
  std::vector<DnsRecord> result;
  topo.resolver.query("web1.cloud", DnsType::kA,
                      [&](std::vector<DnsRecord> r) { result = std::move(r); });
  topo.net.loop().run();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].as_a(), Ipv4Addr(10, 0, 0, 2));
}

TEST(Dns, ResolvesHipRecordWithHostIdentity) {
  DnsTopo topo;
  const auto hit = Ipv6Addr::parse("2001:10::abcd");
  topo.server.add_record("db.cloud",
                         DnsRecord::hip(hit, crypto::to_bytes("rsa-key")));
  std::vector<DnsRecord> result;
  topo.resolver.query("db.cloud", DnsType::kHip,
                      [&](std::vector<DnsRecord> r) { result = std::move(r); });
  topo.net.loop().run();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].hip_hit(), hit);
  EXPECT_EQ(result[0].hip_host_identity(), crypto::to_bytes("rsa-key"));
}

TEST(Dns, TypeFiltering) {
  DnsTopo topo;
  topo.server.add_record("multi.cloud", DnsRecord::a(Ipv4Addr(10, 0, 0, 9)));
  topo.server.add_record("multi.cloud",
                         DnsRecord::aaaa(Ipv6Addr::parse("2001:db8::9")));
  std::vector<DnsRecord> result;
  topo.resolver.query("multi.cloud", DnsType::kAaaa,
                      [&](std::vector<DnsRecord> r) { result = std::move(r); });
  topo.net.loop().run();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].type, DnsType::kAaaa);
}

TEST(Dns, MultipleRecordsSameType) {
  DnsTopo topo;
  topo.server.add_record("lb.cloud", DnsRecord::a(Ipv4Addr(10, 0, 0, 11)));
  topo.server.add_record("lb.cloud", DnsRecord::a(Ipv4Addr(10, 0, 0, 12)));
  topo.server.add_record("lb.cloud", DnsRecord::a(Ipv4Addr(10, 0, 0, 13)));
  std::vector<DnsRecord> result;
  topo.resolver.query("lb.cloud", DnsType::kA,
                      [&](std::vector<DnsRecord> r) { result = std::move(r); });
  topo.net.loop().run();
  EXPECT_EQ(result.size(), 3u);
}

TEST(Dns, NxDomainGivesEmptyResult) {
  DnsTopo topo;
  bool called = false;
  std::vector<DnsRecord> result{DnsRecord::a(Ipv4Addr(1, 2, 3, 4))};
  topo.resolver.query("nope.cloud", DnsType::kA,
                      [&](std::vector<DnsRecord> r) {
                        called = true;
                        result = std::move(r);
                      });
  topo.net.loop().run();
  EXPECT_TRUE(called);
  EXPECT_TRUE(result.empty());
}

TEST(Dns, RemoveRecords) {
  DnsTopo topo;
  topo.server.add_record("x.cloud", DnsRecord::a(Ipv4Addr(10, 0, 0, 9)));
  topo.server.add_record("x.cloud",
                         DnsRecord::aaaa(Ipv6Addr::parse("2001:db8::9")));
  EXPECT_EQ(topo.server.record_count(), 2u);
  topo.server.remove_records("x.cloud", DnsType::kA);
  EXPECT_EQ(topo.server.record_count(), 1u);
  std::vector<DnsRecord> result{DnsRecord::a(Ipv4Addr(1, 2, 3, 4))};
  topo.resolver.query("x.cloud", DnsType::kA,
                      [&](std::vector<DnsRecord> r) { result = std::move(r); });
  topo.net.loop().run();
  EXPECT_TRUE(result.empty());
}

TEST(Dns, QueryToDeadServerTimesOut) {
  TwoHosts topo;
  UdpStack ua(topo.a);
  DnsResolver resolver(topo.a, &ua,
                       Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), kDnsPort});
  bool called = false;
  resolver.query("any.cloud", DnsType::kA, [&](std::vector<DnsRecord> r) {
    called = true;
    EXPECT_TRUE(r.empty());
  });
  topo.net.loop().run();
  EXPECT_TRUE(called);
  EXPECT_GE(topo.net.loop().now(), 2 * sim::kSecond);
}

TEST(Dns, ConcurrentQueriesAreDemultiplexed) {
  DnsTopo topo;
  topo.server.add_record("a.cloud", DnsRecord::a(Ipv4Addr(10, 0, 0, 21)));
  topo.server.add_record("b.cloud", DnsRecord::a(Ipv4Addr(10, 0, 0, 22)));
  Ipv4Addr got_a, got_b;
  topo.resolver.query("a.cloud", DnsType::kA,
                      [&](std::vector<DnsRecord> r) {
                        ASSERT_EQ(r.size(), 1u);
                        got_a = r[0].as_a();
                      });
  topo.resolver.query("b.cloud", DnsType::kA,
                      [&](std::vector<DnsRecord> r) {
                        ASSERT_EQ(r.size(), 1u);
                        got_b = r[0].as_a();
                      });
  topo.net.loop().run();
  EXPECT_EQ(got_a, Ipv4Addr(10, 0, 0, 21));
  EXPECT_EQ(got_b, Ipv4Addr(10, 0, 0, 22));
}

}  // namespace
}  // namespace hipcloud::net
