#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace hipcloud::net {
namespace {

using crypto::Bytes;

TEST(UdpSegment, SerializeParseRoundTrip) {
  UdpSegment seg;
  seg.src_port = 1234;
  seg.dst_port = 53;
  seg.data = crypto::to_bytes("query");
  const Bytes wire = seg.serialize();
  EXPECT_EQ(wire.size(), 8u + 5u);
  const UdpSegment back = UdpSegment::parse(wire);
  EXPECT_EQ(back.src_port, 1234);
  EXPECT_EQ(back.dst_port, 53);
  EXPECT_EQ(back.data, seg.data);
}

TEST(UdpSegment, ParseRejectsTruncated) {
  EXPECT_THROW(UdpSegment::parse(Bytes(7, 0)), std::runtime_error);
}

TEST(UdpSegment, ParseRejectsBadLength) {
  UdpSegment seg;
  seg.data = crypto::to_bytes("abc");
  Bytes wire = seg.serialize();
  wire[4] = 0xff;  // length field > actual
  wire[5] = 0xff;
  EXPECT_THROW(UdpSegment::parse(wire), std::runtime_error);
}

TEST(UdpSegment, EmptyPayload) {
  UdpSegment seg;
  seg.src_port = 1;
  seg.dst_port = 2;
  const UdpSegment back = UdpSegment::parse(seg.serialize());
  EXPECT_TRUE(back.data.empty());
}

TEST(IcmpEcho, RoundTrip) {
  IcmpEcho echo;
  echo.is_reply = false;
  echo.ident = 77;
  echo.seq = 3;
  echo.data = Bytes(56, 0xa5);
  const IcmpEcho back = IcmpEcho::parse(echo.serialize());
  EXPECT_FALSE(back.is_reply);
  EXPECT_EQ(back.ident, 77);
  EXPECT_EQ(back.seq, 3);
  EXPECT_EQ(back.data, echo.data);
}

TEST(IcmpEcho, ReplyFlag) {
  IcmpEcho echo;
  echo.is_reply = true;
  EXPECT_TRUE(IcmpEcho::parse(echo.serialize()).is_reply);
}

TEST(IcmpEcho, ParseRejectsUnknownType) {
  Bytes wire(8, 0);
  wire[0] = 13;  // timestamp request — unsupported
  EXPECT_THROW(IcmpEcho::parse(wire), std::runtime_error);
}

TEST(Packet, WireSizeAccounting) {
  Packet pkt;
  pkt.src = Ipv4Addr(10, 0, 0, 1);
  pkt.dst = Ipv4Addr(10, 0, 0, 2);
  pkt.payload = Bytes(100, 0);
  pkt.stamp_l3_overhead();
  EXPECT_EQ(pkt.header_overhead, 20u);
  EXPECT_EQ(pkt.wire_size(), 120u);
  pkt.dst = Ipv6Addr::parse("2001:db8::1");
  pkt.stamp_l3_overhead();
  EXPECT_EQ(pkt.wire_size(), 140u);
}

TEST(Ipv6Serialization, RoundTrip) {
  Packet pkt;
  pkt.src = Ipv6Addr::parse("2001:db8::1");
  pkt.dst = Ipv6Addr::parse("2001:db8::2");
  pkt.proto = IpProto::kTcp;
  pkt.ttl = 37;
  pkt.payload = crypto::to_bytes("segment bytes");
  const Bytes wire = serialize_ipv6(pkt);
  EXPECT_EQ(wire.size(), 40u + pkt.payload.size());
  const Packet back = parse_ipv6(wire);
  EXPECT_EQ(back.src, pkt.src);
  EXPECT_EQ(back.dst, pkt.dst);
  EXPECT_EQ(back.proto, IpProto::kTcp);
  EXPECT_EQ(back.ttl, 37);
  EXPECT_EQ(back.payload, pkt.payload);
  EXPECT_EQ(back.header_overhead, 40u);
}

TEST(Ipv6Serialization, RejectsV4Packet) {
  Packet pkt;
  pkt.src = Ipv4Addr(10, 0, 0, 1);
  pkt.dst = Ipv6Addr::parse("::1");
  EXPECT_THROW(serialize_ipv6(pkt), std::runtime_error);
}

TEST(Ipv6Serialization, ParseRejectsMalformed) {
  EXPECT_THROW(parse_ipv6(Bytes(39, 0)), std::runtime_error);
  Bytes bad(40, 0);
  bad[0] = 0x40;  // version 4
  EXPECT_THROW(parse_ipv6(bad), std::runtime_error);
  Bytes short_payload(40, 0);
  short_payload[0] = 0x60;
  short_payload[5] = 10;  // claims 10 payload bytes, has none
  EXPECT_THROW(parse_ipv6(short_payload), std::runtime_error);
}

}  // namespace
}  // namespace hipcloud::net
