// Property-style parameterized sweeps over TCP configurations: every
// combination must deliver all bytes intact; throughput must respect the
// min(window/RTT, bandwidth) envelope.

#include <gtest/gtest.h>

#include "net/tcp.hpp"
#include "test_topology.hpp"

namespace hipcloud::net {
namespace {

using crypto::Bytes;

struct SweepParam {
  std::uint32_t window;
  double bandwidth_bps;
  sim::Duration latency;
  double loss;
};

class TcpSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TcpSweep, TransferCompletesAndRespectsEnvelope) {
  const SweepParam p = GetParam();
  LinkConfig link;
  link.bandwidth_bps = p.bandwidth_bps;
  link.latency = p.latency;
  link.loss_rate = p.loss;
  testing::TwoHosts topo(link, /*seed=*/p.window ^ 77);
  TcpConfig cfg;
  cfg.receive_window = p.window;
  TcpStack sa(topo.a, cfg), sb(topo.b, cfg);

  constexpr std::size_t kTotal = 300000;
  std::size_t received = 0;
  std::uint64_t checksum = 0, expected_checksum = 0;
  sim::Time last_arrival = 0;
  sb.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data([&](Bytes data) {
      for (const std::uint8_t b : data) checksum += b;
      received += data.size();
      last_arrival = topo.net.loop().now();
    });
  });
  auto client = sa.connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 80});
  client->on_connect([&] {
    Bytes data(kTotal);
    std::uint8_t v = 1;
    for (auto& b : data) {
      b = v = static_cast<std::uint8_t>(v * 31 + 7);
      expected_checksum += b;
    }
    client->send(std::move(data));
  });
  topo.net.loop().run(300 * sim::kSecond);

  ASSERT_EQ(received, kTotal);
  EXPECT_EQ(checksum, expected_checksum);

  // Envelope: goodput can never beat the wire or the window/RTT bound.
  const double seconds = sim::to_seconds(last_arrival);
  const double goodput = static_cast<double>(kTotal) / seconds;
  EXPECT_LT(goodput, p.bandwidth_bps / 8.0 * 1.01);
  const double rtt = 2.0 * sim::to_seconds(p.latency);
  if (rtt > 0) {
    const double window_bound = static_cast<double>(p.window) / rtt;
    // Only binding when the window is the bottleneck (long fat paths).
    if (window_bound < p.bandwidth_bps / 8.0) {
      EXPECT_LT(goodput, window_bound * 1.15);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Envelope, TcpSweep,
    ::testing::Values(
        SweepParam{87380, 1e9, sim::from_micros(100), 0.0},
        SweepParam{16384, 1e9, sim::from_millis(5), 0.0},
        SweepParam{87380, 10e6, sim::from_millis(1), 0.0},
        SweepParam{65536, 100e6, sim::from_millis(10), 0.0},
        SweepParam{87380, 100e6, sim::from_millis(2), 0.01},
        SweepParam{32768, 50e6, sim::from_millis(20), 0.005},
        SweepParam{8192, 1e9, sim::from_millis(1), 0.0},
        SweepParam{262144, 1e9, sim::from_millis(25), 0.0}),
    [](const auto& name_info) {
      const auto& p = name_info.param;
      return "w" + std::to_string(p.window) + "_b" +
             std::to_string(static_cast<long>(p.bandwidth_bps / 1e6)) +
             "M_l" + std::to_string(sim::to_millis(p.latency) >= 1
                                        ? static_cast<long>(
                                              sim::to_millis(p.latency))
                                        : 0) +
             "ms_p" + std::to_string(static_cast<int>(p.loss * 1000));
    });

/// Bidirectional simultaneous transfer: both directions complete.
TEST(TcpBidirectional, SimultaneousTransfers) {
  testing::TwoHosts topo;
  TcpStack sa(topo.a), sb(topo.b);
  constexpr std::size_t kTotal = 100000;
  std::size_t a_received = 0, b_received = 0;
  sb.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    // hipcheck:allow(self-capture): TcpStack::drop_handlers breaks the cycle at teardown
    conn->on_connect([conn] { /* wait for data */ });
    conn->on_data([&, c = conn.get()](Bytes data) {
      b_received += data.size();
      static bool sent = false;
      if (!sent) {
        sent = true;
        c->send(Bytes(kTotal, 0x22));
      }
    });
  });
  auto client = sa.connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 80});
  client->on_connect([&] { client->send(Bytes(kTotal, 0x11)); });
  client->on_data([&](Bytes data) { a_received += data.size(); });
  topo.net.loop().run(120 * sim::kSecond);
  EXPECT_EQ(b_received, kTotal);
  EXPECT_EQ(a_received, kTotal);
}

/// Many sequential connections: port/tuple management never leaks into
/// wrong connections.
TEST(TcpChurn, SequentialConnectionsAreClean) {
  testing::TwoHosts topo;
  TcpStack sa(topo.a), sb(topo.b);
  int accepted = 0;
  sb.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    ++accepted;
    conn->on_data([c = conn.get()](Bytes data) { c->send(std::move(data)); });
  });
  int completed = 0;
  std::function<void(int)> run_one = [&](int remaining) {
    if (remaining == 0) return;
    auto conn = sa.connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 80});
    // hipcheck:allow(self-capture): conn->close() below drops handlers, breaking the cycle
    conn->on_connect([conn, remaining] {
      conn->send(crypto::to_bytes("x" + std::to_string(remaining)));
    });
    // hipcheck:allow(self-capture): conn->close() below drops handlers, breaking the cycle
    conn->on_data([&, conn, remaining](Bytes data) {
      EXPECT_EQ(data, crypto::to_bytes("x" + std::to_string(remaining)));
      ++completed;
      conn->close();
      run_one(remaining - 1);
    });
  };
  run_one(20);
  topo.net.loop().run(120 * sim::kSecond);
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(accepted, 20);
}

}  // namespace
}  // namespace hipcloud::net
