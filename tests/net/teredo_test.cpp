#include "net/teredo.hpp"

#include <gtest/gtest.h>

#include "net/icmp.hpp"
#include "net/nat.hpp"
#include "net/tcp.hpp"

namespace hipcloud::net {
namespace {

TEST(TeredoAddress, RoundTripsMappedEndpoint) {
  const Ipv4Addr server(8, 0, 0, 53);
  const Ipv4Addr mapped(77, 1, 2, 3);
  const std::uint16_t port = 43210;
  const Ipv6Addr addr = make_teredo_address(server, mapped, port);
  EXPECT_TRUE(addr.is_teredo());
  const Endpoint ep = teredo_mapped_endpoint(addr);
  EXPECT_EQ(ep.addr, IpAddr(mapped));
  EXPECT_EQ(ep.port, port);
}

TEST(TeredoAddress, RejectsNonTeredo) {
  EXPECT_THROW(teredo_mapped_endpoint(Ipv6Addr::parse("2001:db8::1")),
               std::invalid_argument);
}

/// Two Teredo clients, one behind a NAT, one with a public address, plus
/// a combined server/relay:
///
///   alice (192.168.1.2) -- nat -- core -- teredo-server (8.0.0.53)
///                                  |
///                                bob (8.0.0.99)
struct TeredoTopo {
  Network net;
  Node *alice, *natbox, *core, *srv, *bob;
  std::unique_ptr<Nat> nat;
  std::unique_ptr<UdpStack> ua, us, ub;
  std::unique_ptr<TeredoServer> server;
  std::unique_ptr<TeredoClient> ca, cb;

  TeredoTopo() : net(5) {
    alice = net.add_node("alice");
    natbox = net.add_node("natbox");
    core = net.add_node("core");
    srv = net.add_node("teredo-server");
    bob = net.add_node("bob");
    const auto l1 = net.connect(alice, natbox, {});
    const auto l2 = net.connect(natbox, core, {});
    const auto l3 = net.connect(core, srv, {});
    const auto l4 = net.connect(core, bob, {});
    alice->add_address(l1.iface_a, Ipv4Addr(192, 168, 1, 2));
    natbox->add_address(l1.iface_b, Ipv4Addr(192, 168, 1, 1));
    natbox->add_address(l2.iface_a, Ipv4Addr(8, 0, 1, 2));
    core->add_address(l2.iface_b, Ipv4Addr(8, 0, 1, 1));
    core->add_address(l3.iface_a, Ipv4Addr(8, 0, 2, 1));
    srv->add_address(l3.iface_b, Ipv4Addr(8, 0, 0, 53));
    core->add_address(l4.iface_a, Ipv4Addr(8, 0, 3, 1));
    bob->add_address(l4.iface_b, Ipv4Addr(8, 0, 0, 99));

    alice->set_default_route(l1.iface_a);
    natbox->add_route(IpAddr(Ipv4Addr(192, 168, 1, 0)), 24, l1.iface_b);
    natbox->set_default_route(l2.iface_a);
    core->add_route(IpAddr(Ipv4Addr(8, 0, 1, 0)), 24, l2.iface_b);
    core->add_route(IpAddr(Ipv4Addr(8, 0, 0, 53)), 32, l3.iface_a);
    core->add_route(IpAddr(Ipv4Addr(8, 0, 0, 99)), 32, l4.iface_a);
    core->set_forwarding(true);
    srv->set_default_route(l3.iface_b);
    bob->set_default_route(l4.iface_b);
    nat = std::make_unique<Nat>(natbox, l1.iface_b, l2.iface_a,
                                Ipv4Addr(8, 0, 1, 2));
    // Route the NAT public address (its own outside addr doubles as the
    // pool here; inbound translation keys on the mapping table).
    // NOTE: pool == interface address would break local delivery, so use
    // a dedicated pool address routed at the natbox.
    nat.reset();
    nat = std::make_unique<Nat>(natbox, l1.iface_b, l2.iface_a,
                                Ipv4Addr(8, 0, 1, 77));
    core->add_route(IpAddr(Ipv4Addr(8, 0, 1, 77)), 32, l2.iface_b);

    us = std::make_unique<UdpStack>(srv);
    server = std::make_unique<TeredoServer>(srv, us.get());
    ua = std::make_unique<UdpStack>(alice);
    ub = std::make_unique<UdpStack>(bob);
    const Endpoint server_ep{IpAddr(Ipv4Addr(8, 0, 0, 53)), kTeredoPort};
    ca = std::make_unique<TeredoClient>(alice, ua.get(), server_ep);
    cb = std::make_unique<TeredoClient>(bob, ub.get(), server_ep);
  }
};

TEST(Teredo, QualificationBehindNatSeesPublicMapping) {
  TeredoTopo topo;
  Ipv6Addr got;
  topo.ca->qualify([&](const Ipv6Addr& addr) { got = addr; });
  topo.net.loop().run();
  ASSERT_TRUE(topo.ca->qualified());
  EXPECT_TRUE(got.is_teredo());
  // The embedded endpoint must be the NAT pool address, not 192.168.1.2.
  const Endpoint mapped = teredo_mapped_endpoint(got);
  EXPECT_EQ(mapped.addr, IpAddr(Ipv4Addr(8, 0, 1, 77)));
}

TEST(Teredo, QualificationOnPublicHostSeesOwnAddress) {
  TeredoTopo topo;
  topo.cb->qualify([](const Ipv6Addr&) {});
  topo.net.loop().run();
  ASSERT_TRUE(topo.cb->qualified());
  EXPECT_EQ(teredo_mapped_endpoint(topo.cb->address()).addr,
            IpAddr(Ipv4Addr(8, 0, 0, 99)));
}

TEST(Teredo, PingOverTunnelThroughNat) {
  TeredoTopo topo;
  IcmpStack ia(topo.alice), ib(topo.bob);
  topo.ca->qualify([](const Ipv6Addr&) {});
  topo.cb->qualify([](const Ipv6Addr&) {});
  topo.net.loop().run();
  ASSERT_TRUE(topo.ca->qualified() && topo.cb->qualified());

  bool done = false;
  ia.ping(IpAddr(topo.cb->address()), 5, sim::from_millis(5), 32,
          [&](const sim::Summary& rtts, int lost) {
            done = true;
            EXPECT_EQ(lost, 0);
            EXPECT_EQ(rtts.count(), 5u);
          });
  topo.net.loop().run();
  EXPECT_TRUE(done);
}

TEST(Teredo, TunnelRttExceedsDirectV4Rtt) {
  // The relay detour + encapsulation must cost more than the direct path
  // — the ordering the paper's Figure 3 shows for Teredo.
  TeredoTopo topo;
  IcmpStack ia(topo.alice), ib(topo.bob);
  topo.ca->qualify([](const Ipv6Addr&) {});
  topo.cb->qualify([](const Ipv6Addr&) {});
  topo.net.loop().run();

  double direct_rtt = 0, teredo_rtt = 0;
  ia.ping(IpAddr(Ipv4Addr(8, 0, 0, 99)), 10, sim::from_millis(5), 32,
          [&](const sim::Summary& rtts, int) { direct_rtt = rtts.mean(); });
  topo.net.loop().run();
  ia.ping(IpAddr(topo.cb->address()), 10, sim::from_millis(5), 32,
          [&](const sim::Summary& rtts, int) { teredo_rtt = rtts.mean(); });
  topo.net.loop().run();
  EXPECT_GT(direct_rtt, 0.0);
  EXPECT_GT(teredo_rtt, direct_rtt);
}

TEST(Teredo, TcpOverTunnel) {
  TeredoTopo topo;
  topo.ca->qualify([](const Ipv6Addr&) {});
  topo.cb->qualify([](const Ipv6Addr&) {});
  topo.net.loop().run();

  TcpStack ta(topo.alice), tb(topo.bob);
  crypto::Bytes got;
  tb.listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->on_data([&](crypto::Bytes data) { got = std::move(data); });
  });
  auto conn = ta.connect(Endpoint{IpAddr(topo.cb->address()), 80});
  conn->on_connect([&] { conn->send(crypto::to_bytes("over teredo")); });
  topo.net.loop().run();
  EXPECT_EQ(got, crypto::to_bytes("over teredo"));
  // MSS must have shrunk to leave room for the tunnel overhead.
  EXPECT_LE(conn->mss(), 1500u - 40 - 20 - TeredoClient::kTunnelOverhead);
}

TEST(Teredo, UnqualifiedClientDropsTeredoTraffic) {
  TeredoTopo topo;
  IcmpStack ia(topo.alice), ib(topo.bob);
  topo.cb->qualify([](const Ipv6Addr&) {});
  topo.net.loop().run();
  bool done = false;
  ia.ping(IpAddr(topo.cb->address()), 2, sim::from_millis(1), 8,
          [&](const sim::Summary& rtts, int lost) {
            done = true;
            EXPECT_EQ(lost, 2);
            EXPECT_EQ(rtts.count(), 0u);
          });
  topo.net.loop().run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace hipcloud::net
