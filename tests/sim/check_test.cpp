#include "sim/check.hpp"

#include <gtest/gtest.h>

#include "sim/event_loop.hpp"

namespace hipcloud::sim {
namespace {

TEST(Check, CheckThrowsOnFailureWithContext) {
  EXPECT_NO_THROW(HIPCLOUD_CHECK(1 + 1 == 2));
  try {
    HIPCLOUD_CHECK(1 == 2, "arithmetic broke");
    FAIL() << "HIPCLOUD_CHECK(false) did not throw";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CHECK failed"), std::string::npos) << what;
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("arithmetic broke"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
  }
}

TEST(Check, MessageIsOptionalAndLazy) {
  EXPECT_THROW(HIPCLOUD_CHECK(false), CheckFailure);
  // The message expression must not be evaluated when the condition
  // holds — call sites build std::strings in it on hot paths.
  int message_builds = 0;
  auto expensive = [&] {
    ++message_builds;
    return std::string("never needed");
  };
  HIPCLOUD_CHECK(true, expensive());
  EXPECT_EQ(message_builds, 0);
}

TEST(Check, DcheckMatchesBuildConfiguration) {
  int evaluations = 0;
  HIPCLOUD_DCHECK((++evaluations, true));
#if !defined(NDEBUG) || defined(HIPCLOUD_AUDIT_ENABLED)
  EXPECT_EQ(evaluations, 1);  // enabled tier evaluates the condition
  EXPECT_THROW(HIPCLOUD_DCHECK(false), CheckFailure);
#else
  EXPECT_EQ(evaluations, 0);  // disabled tier must not evaluate
  EXPECT_NO_THROW(HIPCLOUD_DCHECK(false));
#endif
}

TEST(Check, AuditMatchesBuildConfiguration) {
  int evaluations = 0;
  HIPCLOUD_AUDIT((++evaluations, true));
#ifdef HIPCLOUD_AUDIT_ENABLED
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(HIPCLOUD_AUDIT(false, "tripped"), CheckFailure);
#else
  EXPECT_EQ(evaluations, 0);
  EXPECT_NO_THROW(HIPCLOUD_AUDIT(false, "compiled out"));
#endif
}

TEST(Check, EventLoopStructuralAuditPassesOnHealthyLoop) {
  // audit_consistency() is compiled in every build (audit builds run it
  // automatically every 1024 firings); a healthy loop with live,
  // cancelled and fired events must scan clean.
  EventLoop loop;
  int fired = 0;
  loop.audit_consistency();
  for (int i = 0; i < 100; ++i) {
    auto h = loop.schedule((i % 10) * kMillisecond, [&] { ++fired; });
    if (i % 3 == 0) loop.cancel(h);
  }
  loop.audit_consistency();
  loop.run();
  loop.audit_consistency();
  EXPECT_EQ(fired, 66);  // 100 scheduled minus 34 cancelled (i % 3 == 0)
  EXPECT_GT(loop.perf().determinism_hash, 0u);
}

TEST(Check, DeterminismHashIsReproducibleAndOrderSensitive) {
  auto run_world = [](bool reversed) {
    EventLoop loop;
    int sink = 0;
    for (int i = 0; i < 50; ++i) {
      const Duration d = reversed ? (50 - i) * kMillisecond
                                  : (i + 1) * kMillisecond;
      loop.schedule(d, [&] { ++sink; });
    }
    loop.run();
    return loop.perf().determinism_hash;
  };
  // Same schedule -> same hash; different firing order -> different hash.
  EXPECT_EQ(run_world(false), run_world(false));
  EXPECT_NE(run_world(false), run_world(true));
}

}  // namespace
}  // namespace hipcloud::sim
