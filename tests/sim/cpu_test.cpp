#include "sim/cpu.hpp"

#include <gtest/gtest.h>

namespace hipcloud::sim {
namespace {

TEST(CpuScheduler, WorkTakesCyclesOverSpeed) {
  EventLoop loop;
  CpuScheduler cpu(loop, 1e9);  // 1 GHz
  Time done_at = -1;
  cpu.run(5e8, [&] { done_at = loop.now(); });  // 0.5 s of work
  loop.run();
  EXPECT_EQ(done_at, kSecond / 2);
}

TEST(CpuScheduler, WorkSerializesFifo) {
  EventLoop loop;
  CpuScheduler cpu(loop, 1e9);
  std::vector<int> order;
  Time second_done = -1;
  cpu.run(1e8, [&] { order.push_back(1); });
  cpu.run(1e8, [&] {
    order.push_back(2);
    second_done = loop.now();
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(second_done, kSecond / 5);  // 0.1 s + 0.1 s back-to-back
}

TEST(CpuScheduler, IdleGapsDontAccumulate) {
  EventLoop loop;
  CpuScheduler cpu(loop, 1e9);
  Time done_at = -1;
  cpu.run(1e8, [] {});  // finishes at 0.1 s
  loop.schedule(kSecond, [&] {
    cpu.run(1e8, [&] { done_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(done_at, kSecond + kSecond / 10);  // starts fresh at 1 s
}

TEST(CpuScheduler, ChargeAdvancesBusyWithoutCallback) {
  EventLoop loop;
  CpuScheduler cpu(loop, 1e9);
  cpu.charge(1e9);
  EXPECT_EQ(cpu.busy_until(), kSecond);
  EXPECT_EQ(cpu.backlog(), kSecond);
  EXPECT_DOUBLE_EQ(cpu.total_cycles(), 1e9);
}

TEST(CpuScheduler, SlowerCpuTakesProportionallyLonger) {
  EventLoop loop;
  CpuScheduler fast(loop, 4e9), slow(loop, 1e9);
  Time fast_done = 0, slow_done = 0;
  fast.run(4e8, [&] { fast_done = loop.now(); });
  slow.run(4e8, [&] { slow_done = loop.now(); });
  loop.run();
  EXPECT_EQ(slow_done, 4 * fast_done);
}

TEST(CpuScheduler, BurstCreditsRunAtBurstRate) {
  EventLoop loop;
  CpuScheduler cpu(loop, 1e9);
  cpu.enable_burst(4e9, 4e9);  // 1 second worth of burst credit
  Time done_at = -1;
  cpu.run(4e9, [&] { done_at = loop.now(); });  // exactly the bucket
  loop.run();
  EXPECT_EQ(done_at, kSecond);  // at burst: 4e9 / 4e9 = 1 s (vs 4 s base)
  EXPECT_DOUBLE_EQ(cpu.remaining_credit_cycles(), 0.0);
}

TEST(CpuScheduler, ExhaustedCreditsFallBackToBase) {
  EventLoop loop;
  CpuScheduler cpu(loop, 1e9);
  cpu.enable_burst(4e9, 4e9);
  Time done_at = -1;
  // 4e9 at burst (1 s) + 1e9 at base (1 s) = 2 s.
  cpu.run(5e9, [&] { done_at = loop.now(); });
  loop.run();
  EXPECT_EQ(done_at, 2 * kSecond);
}

TEST(CpuScheduler, BacklogSeenByNewArrivals) {
  EventLoop loop;
  CpuScheduler cpu(loop, 1e9);
  cpu.run(1e9, [] {});
  EXPECT_EQ(cpu.backlog(), kSecond);
  loop.run(kSecond / 2);
  EXPECT_EQ(cpu.backlog(), kSecond / 2);
}

TEST(CpuScheduler, ZeroCostWorkStillRunsThroughLoop) {
  EventLoop loop;
  CpuScheduler cpu(loop, 1e9);
  bool ran = false;
  cpu.run(0, [&] { ran = true; });
  EXPECT_FALSE(ran);  // not synchronous
  loop.run();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace hipcloud::sim
