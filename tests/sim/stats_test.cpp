#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace hipcloud::sim {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, MeanAndSum) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Summary, SampleStddev) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  // Known dataset: population sigma = 2; sample stddev = sqrt(32/7).
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(Summary, MinMax) {
  Summary s;
  for (double x : {5.0, -1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, PercentileNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Summary, PercentileAfterMoreAdds) {
  Summary s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(20.0);
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);  // re-sorts after mutation
}

TEST(Summary, ClearResets) {
  Summary s;
  s.add(1.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndBounds) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.99);  // bucket 4
  h.add(5.0);   // bucket 2
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (half-open)
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(2), 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hipcloud::sim
