#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hipcloud::sim {
namespace {

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 10.0);
    ASSERT_GE(u, 5.0);
    ASSERT_LT(u, 10.0);
  }
}

TEST(Xoshiro, BelowIsUnbiasedAcrossBuckets) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBuckets = 7;
  constexpr int kN = 70000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kN; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / static_cast<int>(kBuckets), 600);
  }
}

TEST(Xoshiro, BelowOneAlwaysZero) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, ExponentialHasRequestedMean) {
  Xoshiro256 rng(17);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Xoshiro, ForkProducesIndependentStream) {
  Xoshiro256 parent(21);
  Xoshiro256 child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(SplitMix, KnownSequenceIsStable) {
  // Pin the expansion so seeds keep meaning the same world across
  // refactors (golden values captured from this implementation).
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

}  // namespace
}  // namespace hipcloud::sim
