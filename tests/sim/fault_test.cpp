#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hipcloud::sim {
namespace {

TEST(FaultInjector, ScriptedWindowAppliesAndReverts) {
  EventLoop loop;
  FaultInjector chaos(&loop);
  bool down = false;
  std::vector<Time> transitions;
  chaos.window(
      "link-down", 2 * kSecond, 3 * kSecond,
      [&] {
        down = true;
        transitions.push_back(loop.now());
      },
      [&] {
        down = false;
        transitions.push_back(loop.now());
      });

  loop.run(kSecond);
  EXPECT_FALSE(down);
  EXPECT_EQ(chaos.active(), 0u);

  loop.run(4 * kSecond);
  EXPECT_TRUE(down);
  EXPECT_EQ(chaos.active(), 1u);
  EXPECT_EQ(chaos.injected(), 1u);

  loop.run(10 * kSecond);
  EXPECT_FALSE(down);
  EXPECT_EQ(chaos.active(), 0u);

  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], 2 * kSecond);
  EXPECT_EQ(transitions[1], 5 * kSecond);

  ASSERT_EQ(chaos.timeline().size(), 2u);
  EXPECT_TRUE(chaos.timeline()[0].active);
  EXPECT_FALSE(chaos.timeline()[1].active);
  EXPECT_EQ(chaos.timeline()[0].name, "link-down");
}

TEST(FaultInjector, OneShotDoesNotStayActive) {
  EventLoop loop;
  FaultInjector chaos(&loop);
  int fired = 0;
  chaos.at("flip", kSecond, [&] { ++fired; });
  loop.run(2 * kSecond);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(chaos.injected(), 1u);
  EXPECT_EQ(chaos.active(), 0u);
}

TEST(FaultInjector, RandomWindowsAreSeedDeterministic) {
  auto timeline_for = [](std::uint64_t seed) {
    EventLoop loop;
    FaultInjector chaos(&loop, seed);
    chaos.random_windows("burst", 0, 60 * kSecond, 5 * kSecond,
                         kSecond / 2, 2 * kSecond, [] {}, [] {});
    loop.run(60 * kSecond);
    return chaos.timeline();
  };

  const auto t1 = timeline_for(7);
  const auto t2 = timeline_for(7);
  const auto t3 = timeline_for(8);

  ASSERT_FALSE(t1.empty());
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].at, t2[i].at);
    EXPECT_EQ(t1[i].name, t2[i].name);
    EXPECT_EQ(t1[i].active, t2[i].active);
  }
  // A different seed produces a different schedule.
  bool differs = t1.size() != t3.size();
  for (std::size_t i = 0; !differs && i < t1.size(); ++i) {
    differs = t1[i].at != t3[i].at;
  }
  EXPECT_TRUE(differs);

  // Windows never escape [from, until) on the apply side, and every
  // window that opened inside the horizon also closed.
  std::size_t opens = 0, closes = 0;
  for (const auto& ev : t1) {
    if (ev.active) {
      EXPECT_LT(ev.at, 60 * kSecond);
      ++opens;
    } else {
      ++closes;
    }
  }
  EXPECT_EQ(opens, closes);
}

}  // namespace
}  // namespace hipcloud::sim
