#include "sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hipcloud::sim {
namespace {

TEST(EventLoop, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.idle());
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(30, [&] { order.push_back(3); });
  loop.schedule(10, [&] { order.push_back(1); });
  loop.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameInstantIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule(100, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, NegativeDelayClampsToNow) {
  EventLoop loop;
  Time fired_at = -1;
  loop.schedule(50, [&] {
    loop.schedule(-10, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 50);
}

TEST(EventLoop, EventsScheduleMoreEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) loop.schedule(5, chain);
  };
  loop.schedule(5, chain);
  loop.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(loop.now(), 50);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  const auto h = loop.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(h));
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, CancelTwiceReturnsFalse) {
  EventLoop loop;
  const auto h = loop.schedule(10, [] {});
  EXPECT_TRUE(loop.cancel(h));
  EXPECT_FALSE(loop.cancel(h));
  loop.run();
}

TEST(EventLoop, CancelInvalidHandleIsNoop) {
  EventLoop loop;
  EXPECT_FALSE(loop.cancel(EventHandle{}));
}

TEST(EventLoop, RunUntilStopsAtBound) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(10, [&] { ++fired; });
  loop.schedule(20, [&] { ++fired; });
  loop.schedule(30, [&] { ++fired; });
  EXPECT_EQ(loop.run(15), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 15);  // clock advances to the bound
  EXPECT_EQ(loop.run(), 2u);
  EXPECT_EQ(fired, 3);
}

TEST(EventLoop, StopHaltsRun) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(10, [&] {
    ++fired;
    loop.stop();
  });
  loop.schedule(20, [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, ScheduleAtAbsoluteTime) {
  EventLoop loop;
  Time fired_at = -1;
  loop.schedule_at(123, [&] { fired_at = loop.now(); });
  loop.run();
  EXPECT_EQ(fired_at, 123);
}

TEST(EventLoop, PendingCountExcludesCancelled) {
  EventLoop loop;
  loop.schedule(10, [] {});
  const auto h = loop.schedule(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(h);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, StepExecutesOneEvent) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(10, [&] { ++fired; });
  loop.schedule(20, [&] { ++fired; });
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(loop.step());
}

TEST(EventLoop, CancelAfterFireReturnsFalse) {
  EventLoop loop;
  const auto h = loop.schedule(10, [] {});
  loop.run();
  EXPECT_FALSE(loop.cancel(h));
  EXPECT_EQ(loop.tombstones(), 0u);
}

// The RTO re-arm pattern: every ack cancels the pending retransmit timer
// and schedules a new one; sometimes the timer wins and the cancel arrives
// late. A long closed-loop run must not accumulate tombstones for events
// that already fired (the seed leak) and must drain the set completely.
TEST(EventLoop, HeavyRearmChurnLeavesNoTombstones) {
  EventLoop loop;
  std::size_t scheduled = 0, cancelled = 0, fired = 0, late_cancels = 0;
  std::size_t rounds = 0;
  EventHandle rto;
  std::function<void()> ack = [&] {
    ++fired;
    if (rto.valid()) {
      if (loop.cancel(rto)) {
        ++cancelled;
      } else {
        ++late_cancels;  // timer already fired — must not tombstone
      }
    }
    if (scheduled < 10000) {
      rto = loop.schedule(100, [&] { ++fired; });
      ++scheduled;
      // Every 20th ack dawdles past the timer so the cancel arrives late.
      loop.schedule(++rounds % 20 == 0 ? 150 : 1, ack);
      ++scheduled;
    }
    // pending() counts exactly the scheduled-but-not-fired-or-cancelled
    // events, and tombstones are bounded by the cancels still inside the
    // 100-unit re-arm window — not by the whole history of the run.
    EXPECT_EQ(loop.pending(), scheduled + 1 - fired - cancelled);
    EXPECT_LE(loop.tombstones(), 150u);
  };
  loop.schedule(0, ack);
  loop.run();
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.tombstones(), 0u);
  EXPECT_TRUE(loop.idle());
  EXPECT_GT(cancelled, 4000u);   // the churn actually happened
  EXPECT_GT(late_cancels, 100u);  // and the late-cancel path was exercised
}

TEST(EventLoop, PendingMatchesLiveEventsUnderMixedCancellation) {
  EventLoop loop;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) handles.push_back(loop.schedule(i, [] {}));
  for (int i = 0; i < 100; i += 2) loop.cancel(handles[i]);
  EXPECT_EQ(loop.pending(), 50u);
  EXPECT_EQ(loop.tombstones(), 50u);
  loop.run(49);  // fires odd-delay events up to t=49, skipping tombstones
  EXPECT_EQ(loop.pending(), 25u);
  loop.run();
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.tombstones(), 0u);
  EXPECT_TRUE(loop.idle());
}

TEST(EventLoop, GoldenFiringOrderUnderSameInstantCancelChurn) {
  // Determinism regression for the indexed-heap engine: interleaved
  // schedule / cancel / re-schedule at identical instants must fire in
  // exactly the order the documented rule implies — same-instant events
  // fire in schedule order, cancellations never perturb the order of
  // survivors, and a re-schedule counts as a fresh schedule (it joins the
  // back of its instant). The simulation results of every seeded world
  // depend on this sequence, so it is pinned as a golden vector.
  EventLoop loop;
  std::vector<int> order;
  auto rec = [&order](int id) {
    return [&order, id] { order.push_back(id); };
  };

  const auto a = loop.schedule(10, rec(1));
  const auto b = loop.schedule(10, rec(2));
  loop.schedule(10, rec(3));
  loop.cancel(b);          // tombstone between two survivors
  loop.schedule(10, rec(4));  // "re-scheduled b": new event, back of t=10
  loop.schedule(5, rec(5));   // scheduled later but fires first
  loop.cancel(a);          // cancel the head of the t=10 instant
  loop.schedule(10, rec(6));
  // From inside a t=5 callback, schedule into the t=10 instant: it must
  // land behind every event already queued there.
  loop.schedule(5, [&] { loop.schedule(5, rec(7)); });

  loop.run();
  EXPECT_EQ(order, (std::vector<int>{5, 3, 4, 6, 7}));
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.tombstones(), 0u);

  // Stale handles from the drained run must not cancel anything ever
  // again, even after their slots are recycled by new events.
  std::vector<EventHandle> fresh;
  for (int i = 0; i < 8; ++i) fresh.push_back(loop.schedule(1, rec(100 + i)));
  EXPECT_FALSE(loop.cancel(a));
  EXPECT_FALSE(loop.cancel(b));
  EXPECT_EQ(loop.pending(), 8u);
  loop.run();
  EXPECT_EQ(order.size(), 13u);
}

TEST(TimeFormat, HumanReadableUnits) {
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_time(1500), "1.500us");
  EXPECT_EQ(format_time(2 * kMillisecond), "2.000ms");
  EXPECT_EQ(format_time(3 * kSecond), "3.000000s");
}

TEST(TimeConversion, RoundTrips) {
  EXPECT_EQ(from_seconds(1.5), 1500 * kMillisecond);
  EXPECT_EQ(from_millis(2.5), 2500 * kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
}

}  // namespace
}  // namespace hipcloud::sim
