#include "sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hipcloud::sim {
namespace {

TEST(EventLoop, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.idle());
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(30, [&] { order.push_back(3); });
  loop.schedule(10, [&] { order.push_back(1); });
  loop.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameInstantIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule(100, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, NegativeDelayClampsToNow) {
  EventLoop loop;
  Time fired_at = -1;
  loop.schedule(50, [&] {
    loop.schedule(-10, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 50);
}

TEST(EventLoop, EventsScheduleMoreEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) loop.schedule(5, chain);
  };
  loop.schedule(5, chain);
  loop.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(loop.now(), 50);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  const auto h = loop.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(h));
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, CancelTwiceReturnsFalse) {
  EventLoop loop;
  const auto h = loop.schedule(10, [] {});
  EXPECT_TRUE(loop.cancel(h));
  EXPECT_FALSE(loop.cancel(h));
  loop.run();
}

TEST(EventLoop, CancelInvalidHandleIsNoop) {
  EventLoop loop;
  EXPECT_FALSE(loop.cancel(EventHandle{}));
}

TEST(EventLoop, RunUntilStopsAtBound) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(10, [&] { ++fired; });
  loop.schedule(20, [&] { ++fired; });
  loop.schedule(30, [&] { ++fired; });
  EXPECT_EQ(loop.run(15), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 15);  // clock advances to the bound
  EXPECT_EQ(loop.run(), 2u);
  EXPECT_EQ(fired, 3);
}

TEST(EventLoop, StopHaltsRun) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(10, [&] {
    ++fired;
    loop.stop();
  });
  loop.schedule(20, [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, ScheduleAtAbsoluteTime) {
  EventLoop loop;
  Time fired_at = -1;
  loop.schedule_at(123, [&] { fired_at = loop.now(); });
  loop.run();
  EXPECT_EQ(fired_at, 123);
}

TEST(EventLoop, PendingCountExcludesCancelled) {
  EventLoop loop;
  loop.schedule(10, [] {});
  const auto h = loop.schedule(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(h);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, StepExecutesOneEvent) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(10, [&] { ++fired; });
  loop.schedule(20, [&] { ++fired; });
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(loop.step());
}

TEST(TimeFormat, HumanReadableUnits) {
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_time(1500), "1.500us");
  EXPECT_EQ(format_time(2 * kMillisecond), "2.000ms");
  EXPECT_EQ(format_time(3 * kSecond), "3.000000s");
}

TEST(TimeConversion, RoundTrips) {
  EXPECT_EQ(from_seconds(1.5), 1500 * kMillisecond);
  EXPECT_EQ(from_millis(2.5), 2500 * kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
}

}  // namespace
}  // namespace hipcloud::sim
