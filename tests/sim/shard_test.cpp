#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "sim/check.hpp"
#include "sim/event_loop.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace hipcloud::sim {
namespace {

constexpr Duration kLookahead = from_micros(100);

/// A deterministic synthetic multi-shard world: every shard runs a
/// self-rescheduling tick chain, folds what it sees into a local
/// accumulator, and every third tick posts a cross-shard event to the
/// next shard (which in turn schedules a local follow-up). The whole
/// construction is a pure function of (shards, ticks); only the worker
/// count at run() time varies across test runs.
struct SyntheticWorld {
  std::vector<std::unique_ptr<EventLoop>> loops;
  ShardCoordinator coord;
  std::vector<std::uint64_t> acc;       // written only by the owning shard
  std::vector<std::uint64_t> arrivals;  // cross-event count per shard

  SyntheticWorld(std::size_t shards, int ticks) : acc(shards), arrivals(shards) {
    for (std::size_t s = 0; s < shards; ++s) {
      loops.push_back(std::make_unique<EventLoop>());
      coord.add_shard(loops.back().get());
    }
    coord.set_lookahead(kLookahead);
    for (std::size_t s = 0; s < shards; ++s) {
      schedule_tick(s, shards, /*tick=*/0, ticks);
    }
  }

  void fold(std::size_t s, std::uint64_t word) {
    acc[s] = (acc[s] ^ word) * 1099511628211ULL;
  }

  void schedule_tick(std::size_t s, std::size_t shards, int tick, int ticks) {
    if (tick >= ticks) return;
    const Duration step = from_micros(10 + static_cast<int>(s));
    loops[s]->schedule(step, [this, s, shards, tick, ticks] {
      fold(s, static_cast<std::uint64_t>(loops[s]->now()));
      fold(s, static_cast<std::uint64_t>(tick));
      if (tick % 3 == 0 && shards > 1) {
        const std::size_t dst = (s + 1) % shards;
        // Lookahead contract: the post lands at or beyond the end of the
        // epoch that issued it.
        const Time when = loops[s]->now() + kLookahead + from_micros(7);
        coord.post(s, dst, when, [this, dst, s] {
          ++arrivals[dst];
          fold(dst, 0x9e3779b97f4a7c15ULL + s);
          loops[dst]->schedule(from_micros(5),
                               [this, dst] { fold(dst, 0xfeedULL); });
        });
      }
      schedule_tick(s, shards, tick + 1, ticks);
    });
  }
};

struct RunResult {
  std::uint64_t hash;
  std::uint64_t fired;
  std::vector<std::uint64_t> acc;
  std::vector<std::uint64_t> arrivals;
  std::vector<Time> clocks;
};

RunResult run_world(std::size_t shards, int ticks, Time until,
                    unsigned workers) {
  SyntheticWorld w(shards, ticks);
  w.coord.run(until, workers);
  RunResult r;
  r.hash = w.coord.world_hash();
  r.fired = w.coord.merged_perf().events_fired;
  r.acc = w.acc;
  r.arrivals = w.arrivals;
  for (auto& loop : w.loops) r.clocks.push_back(loop->now());
  return r;
}

TEST(ShardCoordinator, HashByteIdenticalAcrossWorkerCounts) {
  const Time until = from_millis(3);
  const RunResult base = run_world(8, 40, until, 1);
  EXPECT_GT(base.fired, 0u);
  EXPECT_GT(base.arrivals[1], 0u);
  for (const unsigned workers : {2u, 4u, 8u}) {
    const RunResult r = run_world(8, 40, until, workers);
    EXPECT_EQ(r.hash, base.hash) << "workers=" << workers;
    EXPECT_EQ(r.fired, base.fired) << "workers=" << workers;
    EXPECT_EQ(r.acc, base.acc) << "workers=" << workers;
    EXPECT_EQ(r.arrivals, base.arrivals) << "workers=" << workers;
    EXPECT_EQ(r.clocks, base.clocks) << "workers=" << workers;
  }
}

TEST(ShardCoordinator, DrainToCompletionMatchesBoundedRun) {
  // until = -1 runs until every loop and inbox drains; the event streams
  // must still be worker-count independent.
  const RunResult base = run_world(4, 30, -1, 1);
  for (const unsigned workers : {2u, 4u}) {
    const RunResult r = run_world(4, 30, -1, workers);
    EXPECT_EQ(r.hash, base.hash);
    EXPECT_EQ(r.acc, base.acc);
  }
}

TEST(ShardCoordinator, CrossShardDeliveryAtExactLookaheadBoundary) {
  // A post whose arrival lands exactly one lookahead ahead — the tightest
  // legal cross-shard delivery — must fire at precisely that virtual
  // time in the destination, at every worker count.
  for (const unsigned workers : {1u, 2u}) {
    std::vector<std::unique_ptr<EventLoop>> loops;
    ShardCoordinator coord;
    for (int s = 0; s < 2; ++s) {
      loops.push_back(std::make_unique<EventLoop>());
      coord.add_shard(loops.back().get());
    }
    coord.set_lookahead(kLookahead);
    Time boundary_fire = -1;
    Time far_fire = -1;
    loops[0]->schedule_at(0, [&] {
      coord.post(0, 1, kLookahead,
                 [&] { boundary_fire = loops[1]->now(); });
      coord.post(0, 1, 3 * kLookahead + from_micros(50),
                 [&] { far_fire = loops[1]->now(); });
    });
    coord.run(from_millis(1), workers);
    EXPECT_EQ(boundary_fire, kLookahead) << "workers=" << workers;
    EXPECT_EQ(far_fire, 3 * kLookahead + from_micros(50))
        << "workers=" << workers;
    EXPECT_EQ(loops[0]->now(), from_millis(1));
    EXPECT_EQ(loops[1]->now(), from_millis(1));
  }
}

TEST(ShardCoordinator, DrainOrderIsWhenThenSourceThenPostIndex) {
  // Three sources post events for the same destination instant; the
  // drain must schedule them by (when, src shard, post index), never by
  // which worker drained first.
  for (const unsigned workers : {1u, 4u}) {
    std::vector<std::unique_ptr<EventLoop>> loops;
    ShardCoordinator coord;
    for (int s = 0; s < 4; ++s) {
      loops.push_back(std::make_unique<EventLoop>());
      coord.add_shard(loops.back().get());
    }
    coord.set_lookahead(kLookahead);
    std::vector<int> order;
    const Time when = kLookahead + from_micros(1);
    // Post from sources 3, 1, 2 (registration order must not matter) —
    // plus a second event from source 1 to exercise the post index.
    loops[3]->schedule_at(0, [&] {
      coord.post(3, 0, when, [&] { order.push_back(30); });
    });
    loops[1]->schedule_at(0, [&] {
      coord.post(1, 0, when, [&] { order.push_back(10); });
      coord.post(1, 0, when, [&] { order.push_back(11); });
    });
    loops[2]->schedule_at(0, [&] {
      coord.post(2, 0, when, [&] { order.push_back(20); });
    });
    coord.run(from_millis(1), workers);
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 30}))
        << "workers=" << workers;
  }
}

TEST(ShardCoordinator, SkipAheadOverIdleStretches) {
  // Two events a long idle gap apart: the coordinator must not grind
  // through (gap / lookahead) empty epochs. events_fired and the final
  // clock prove the far event still fires at its exact time.
  std::vector<std::unique_ptr<EventLoop>> loops;
  ShardCoordinator coord;
  for (int s = 0; s < 2; ++s) {
    loops.push_back(std::make_unique<EventLoop>());
    coord.add_shard(loops.back().get());
  }
  coord.set_lookahead(kLookahead);
  Time fired_at = -1;
  loops[0]->schedule_at(from_micros(5), [] {});
  loops[1]->schedule_at(from_seconds(10), [&] { fired_at = loops[1]->now(); });
  coord.run(from_seconds(11), 2);
  EXPECT_EQ(fired_at, from_seconds(10));
  EXPECT_EQ(coord.merged_perf().events_fired, 2u);
}

TEST(ShardCoordinator, MergedPerfIsShardIdOrderAndWorkerInvariant) {
  SyntheticWorld w(4, 20);
  w.coord.run(from_millis(2), 4);
  // Manual shard-id-order merge must match what the coordinator reports.
  PerfCounters manual;
  for (std::size_t s = 0; s < 4; ++s) manual.merge(w.loops[s]->perf());
  const PerfCounters merged = w.coord.merged_perf();
  EXPECT_EQ(merged.determinism_hash, manual.determinism_hash);
  EXPECT_EQ(merged.events_fired, manual.events_fired);
  EXPECT_EQ(merged.events_scheduled, manual.events_scheduled);
}

TEST(ShardCoordinator, CallbackFailurePropagatesWithoutDeadlock) {
  for (const unsigned workers : {1u, 2u}) {
    std::vector<std::unique_ptr<EventLoop>> loops;
    ShardCoordinator coord;
    for (int s = 0; s < 2; ++s) {
      loops.push_back(std::make_unique<EventLoop>());
      coord.add_shard(loops.back().get());
    }
    coord.set_lookahead(kLookahead);
    loops[1]->schedule_at(from_micros(10), [] {
      throw CheckFailure("synthetic shard failure");
    });
    loops[0]->schedule_at(from_micros(1), [] {});
    EXPECT_THROW(coord.run(from_millis(1), workers), CheckFailure);
  }
}

TEST(ShardCoordinator, AdaptiveAndGlobalMinHashesAreByteIdentical) {
  // The tentpole invariant: per-pair horizons re-slice the epochs but
  // must not rename or reorder a single firing. Same world, both modes,
  // every worker count — one hash.
  const Time until = from_millis(3);
  std::uint64_t want_hash = 0;
  std::uint64_t want_epochs_adaptive = 0;
  for (const bool adaptive : {true, false}) {
    for (const unsigned workers : {1u, 2u, 4u, 8u}) {
      SyntheticWorld w(8, 40);
      w.coord.set_adaptive(adaptive);
      w.coord.run(until, workers);
      if (want_hash == 0) want_hash = w.coord.world_hash();
      EXPECT_EQ(w.coord.world_hash(), want_hash)
          << "adaptive=" << adaptive << " workers=" << workers;
      // Epoch count is a pure function of the schedule and the mode.
      if (adaptive && want_epochs_adaptive == 0) {
        want_epochs_adaptive = w.coord.epochs();
      }
      if (adaptive) {
        EXPECT_EQ(w.coord.epochs(), want_epochs_adaptive)
            << "workers=" << workers;
      }
    }
  }
}

TEST(ShardCoordinator, DeliveryAtExactPerPairLookaheadBoundary) {
  // Two seams with very different registered lookaheads; a post that
  // lands exactly one *pair* lookahead ahead — tighter than the slow
  // seam, looser than nothing — must fire at precisely that instant.
  constexpr Duration kFast = from_micros(200);
  constexpr Duration kSlow = from_millis(4);
  for (const unsigned workers : {1u, 2u, 4u}) {
    std::vector<std::unique_ptr<EventLoop>> loops;
    ShardCoordinator coord;
    for (int s = 0; s < 3; ++s) {
      loops.push_back(std::make_unique<EventLoop>());
      coord.add_shard(loops.back().get());
    }
    coord.set_registered_pairs_only(true);
    coord.register_pair_lookahead(0, 1, kFast);
    coord.register_pair_lookahead(0, 2, kSlow);
    EXPECT_EQ(coord.pair_lookahead(0, 1), kFast);
    EXPECT_EQ(coord.pair_lookahead(0, 2), kSlow);
    EXPECT_EQ(coord.pair_lookahead(1, 0), Duration{-1});
    Time fast_fire = -1;
    Time slow_fire = -1;
    loops[0]->schedule_at(0, [&] {
      coord.post(0, 1, kFast, [&] { fast_fire = loops[1]->now(); });
      coord.post(0, 2, kSlow, [&] { slow_fire = loops[2]->now(); });
    });
    coord.run(from_millis(10), workers);
    EXPECT_EQ(fast_fire, kFast) << "workers=" << workers;
    EXPECT_EQ(slow_fire, kSlow) << "workers=" << workers;
  }
}

/// Two isolated seam groups with very different cadences: shards 0<->1
/// ping-pong every ~kFast over a fast seam, shards 2<->3 every ~kSlow
/// over a slow one. Registered-pairs-only, so no seam crosses the
/// groups. Built as a fixture so the heterogeneous tests below can run
/// it in both horizon modes and at any worker count.
struct TwoPairWorld {
  static constexpr Duration kFast = from_micros(100);
  static constexpr Duration kSlow = from_millis(10);

  std::vector<std::unique_ptr<EventLoop>> loops;
  ShardCoordinator coord;
  std::vector<std::uint64_t> bounces{0, 0, 0, 0};

  TwoPairWorld() {
    for (int s = 0; s < 4; ++s) {
      loops.push_back(std::make_unique<EventLoop>());
      coord.add_shard(loops.back().get());
    }
    coord.set_registered_pairs_only(true);
    coord.register_pair_lookahead(0, 1, kFast);
    coord.register_pair_lookahead(1, 0, kFast);
    coord.register_pair_lookahead(2, 3, kSlow);
    coord.register_pair_lookahead(3, 2, kSlow);
    loops[0]->schedule_at(0, [this] { bounce(0, 1, kFast); });
    loops[2]->schedule_at(0, [this] { bounce(2, 3, kSlow); });
  }

  void bounce(std::size_t from, std::size_t to, Duration la) {
    ++bounces[from];
    coord.post(from, to, loops[from]->now() + la, [this, to, from, la] {
      bounce(to, from, la);
    });
  }
};

TEST(ShardCoordinator, FastSeamDoesNotThrottleSlowPairStride) {
  // Under the global-min rule every shard's horizon creeps at kFast
  // cadence, so the slow pair is dragged through thousands of tiny
  // strides. Under per-pair horizons the slow shards take one stride
  // per bounce. Same firings, same hash, far fewer strides.
  const Time until = from_millis(50);
  PerfCounters adaptive_perf;
  PerfCounters global_perf;
  std::uint64_t adaptive_hash = 0;
  std::uint64_t global_hash = 0;
  std::vector<std::uint64_t> adaptive_bounces;
  {
    TwoPairWorld w;
    w.coord.run(until, 1);
    adaptive_perf = w.coord.merged_perf();
    adaptive_hash = w.coord.world_hash();
    adaptive_bounces = w.bounces;
  }
  {
    TwoPairWorld w;
    w.coord.set_adaptive(false);
    w.coord.run(until, 1);
    global_perf = w.coord.merged_perf();
    global_hash = w.coord.world_hash();
    EXPECT_EQ(w.bounces, adaptive_bounces);
  }
  // ~500 fast bounces and ~5 slow ones actually happened either way.
  EXPECT_GT(adaptive_bounces[0], 100u);
  EXPECT_GE(adaptive_bounces[2], 3u);
  EXPECT_EQ(adaptive_hash, global_hash);
  EXPECT_EQ(adaptive_perf.events_fired, global_perf.events_fired);
  // The stride economy is the point: the slow pair rides long strides
  // instead of being marched at the fast seam's cadence.
  EXPECT_LT(adaptive_perf.shard_strides, global_perf.shard_strides / 2);
  EXPECT_GE(adaptive_perf.events_per_epoch(), global_perf.events_per_epoch());
  // Worker-count invariance for the heterogeneous world, both modes.
  for (const bool adaptive : {true, false}) {
    for (const unsigned workers : {2u, 4u}) {
      TwoPairWorld w;
      w.coord.set_adaptive(adaptive);
      w.coord.run(until, workers);
      EXPECT_EQ(w.coord.world_hash(), adaptive_hash)
          << "adaptive=" << adaptive << " workers=" << workers;
      EXPECT_EQ(w.bounces, adaptive_bounces)
          << "adaptive=" << adaptive << " workers=" << workers;
    }
  }
}

TEST(ShardCoordinator, DynamicLinkAdditionShrinksPairLookaheadMidRun) {
  // A new, faster link appears on an existing seam between runs:
  // registration is shrink-only, tightens only that pair, and the
  // delivery contract switches to the new bound for traffic posted
  // afterwards. Hashes stay worker-invariant across the whole
  // two-segment schedule.
  constexpr Duration kInitial = from_millis(2);
  constexpr Duration kShrunk = from_micros(250);
  auto run_segments = [&](unsigned workers) {
    std::vector<std::unique_ptr<EventLoop>> loops;
    ShardCoordinator coord;
    for (int s = 0; s < 2; ++s) {
      loops.push_back(std::make_unique<EventLoop>());
      coord.add_shard(loops.back().get());
    }
    coord.set_registered_pairs_only(true);
    coord.register_pair_lookahead(0, 1, kInitial);
    coord.register_pair_lookahead(1, 0, kInitial);
    std::vector<Time> fires;
    loops[0]->schedule_at(0, [&] {
      coord.post(0, 1, kInitial, [&] { fires.push_back(loops[1]->now()); });
    });
    coord.run(from_millis(5), workers);
    // The new link lands: the seam is now 8x tighter. A larger value
    // must NOT loosen it back.
    coord.register_pair_lookahead(0, 1, kShrunk);
    coord.register_pair_lookahead(0, 1, from_millis(50));
    EXPECT_EQ(coord.pair_lookahead(0, 1), kShrunk);
    EXPECT_EQ(coord.pair_lookahead(1, 0), kInitial);
    const Time t0 = from_millis(5);
    loops[0]->schedule_at(t0, [&] {
      coord.post(0, 1, t0 + kShrunk,
                 [&] { fires.push_back(loops[1]->now()); });
    });
    coord.run(from_millis(10), workers);
    EXPECT_EQ(fires,
              (std::vector<Time>{kInitial, t0 + kShrunk}))
        << "workers=" << workers;
    return coord.world_hash();
  };
  const std::uint64_t base = run_segments(1);
  EXPECT_EQ(run_segments(2), base);
}

TEST(ShardCoordinator, PlanWorkersClampsAutoRequestsToWorkOnHand) {
  SyntheticWorld tiny(4, 2);
  // Explicit requests pass through, clamped only by the shard count.
  EXPECT_EQ(tiny.coord.plan_workers(2), 2u);
  EXPECT_EQ(tiny.coord.plan_workers(8), 4u);
  // Auto on a tiny world collapses to 1: a handful of pending events
  // cannot amortize even one barrier round of thread traffic.
  EXPECT_LT(tiny.coord.shard(0)->pending() * 4,
            ShardCoordinator::kAutoEventsPerWorker);
  EXPECT_EQ(tiny.coord.plan_workers(0), 1u);
  // run(until, 0) must behave like an explicit run at the planned count:
  // same hash as every other worker count.
  const Time until = from_millis(1);
  const RunResult base = run_world(4, 10, until, 1);
  SyntheticWorld w(4, 10);
  w.coord.run(until, 0);
  EXPECT_EQ(w.coord.world_hash(), base.hash);
}

TEST(ShardCoordinator, PostOnUnregisteredSeamTripsInRegisteredOnlyMode) {
  std::vector<std::unique_ptr<EventLoop>> loops;
  ShardCoordinator coord;
  for (int s = 0; s < 2; ++s) {
    loops.push_back(std::make_unique<EventLoop>());
    coord.add_shard(loops.back().get());
  }
  coord.set_registered_pairs_only(true);
  coord.register_pair_lookahead(0, 1, kLookahead);
  EXPECT_NO_THROW(coord.post(0, 1, kLookahead, [] {}));
  EXPECT_THROW(coord.post(1, 0, kLookahead, [] {}), CheckFailure);
}

TEST(SummaryMerge, FixedOrderMergesAreByteIdentical) {
  // Chan's combination is order-sensitive in floating point; the contract
  // is that merging the same partials in the same (shard-id) order twice
  // yields bit-identical state. See Summary::merge.
  std::vector<Summary> parts(4);
  std::uint64_t x = 88172645463325252ULL;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    for (int i = 0; i < 1000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      parts[s].add(static_cast<double>(x % 100000) / 7.0);
    }
  }
  Summary a;
  for (const Summary& p : parts) a.merge(p);
  Summary b;
  for (const Summary& p : parts) b.merge(p);
  // Bit-level equality, not EXPECT_DOUBLE_EQ: the JSON writers print
  // these values, and the bytes must reproduce.
  const double ma = a.mean(), mb = b.mean();
  const double va = a.stddev(), vb = b.stddev();
  EXPECT_EQ(std::memcmp(&ma, &mb, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&va, &vb, sizeof(double)), 0);
  EXPECT_EQ(a.percentile(99), b.percentile(99));
}

}  // namespace
}  // namespace hipcloud::sim
