#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "sim/check.hpp"
#include "sim/event_loop.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace hipcloud::sim {
namespace {

constexpr Duration kLookahead = from_micros(100);

/// A deterministic synthetic multi-shard world: every shard runs a
/// self-rescheduling tick chain, folds what it sees into a local
/// accumulator, and every third tick posts a cross-shard event to the
/// next shard (which in turn schedules a local follow-up). The whole
/// construction is a pure function of (shards, ticks); only the worker
/// count at run() time varies across test runs.
struct SyntheticWorld {
  std::vector<std::unique_ptr<EventLoop>> loops;
  ShardCoordinator coord;
  std::vector<std::uint64_t> acc;       // written only by the owning shard
  std::vector<std::uint64_t> arrivals;  // cross-event count per shard

  SyntheticWorld(std::size_t shards, int ticks) : acc(shards), arrivals(shards) {
    for (std::size_t s = 0; s < shards; ++s) {
      loops.push_back(std::make_unique<EventLoop>());
      coord.add_shard(loops.back().get());
    }
    coord.set_lookahead(kLookahead);
    for (std::size_t s = 0; s < shards; ++s) {
      schedule_tick(s, shards, /*tick=*/0, ticks);
    }
  }

  void fold(std::size_t s, std::uint64_t word) {
    acc[s] = (acc[s] ^ word) * 1099511628211ULL;
  }

  void schedule_tick(std::size_t s, std::size_t shards, int tick, int ticks) {
    if (tick >= ticks) return;
    const Duration step = from_micros(10 + static_cast<int>(s));
    loops[s]->schedule(step, [this, s, shards, tick, ticks] {
      fold(s, static_cast<std::uint64_t>(loops[s]->now()));
      fold(s, static_cast<std::uint64_t>(tick));
      if (tick % 3 == 0 && shards > 1) {
        const std::size_t dst = (s + 1) % shards;
        // Lookahead contract: the post lands at or beyond the end of the
        // epoch that issued it.
        const Time when = loops[s]->now() + kLookahead + from_micros(7);
        coord.post(s, dst, when, [this, dst, s] {
          ++arrivals[dst];
          fold(dst, 0x9e3779b97f4a7c15ULL + s);
          loops[dst]->schedule(from_micros(5),
                               [this, dst] { fold(dst, 0xfeedULL); });
        });
      }
      schedule_tick(s, shards, tick + 1, ticks);
    });
  }
};

struct RunResult {
  std::uint64_t hash;
  std::uint64_t fired;
  std::vector<std::uint64_t> acc;
  std::vector<std::uint64_t> arrivals;
  std::vector<Time> clocks;
};

RunResult run_world(std::size_t shards, int ticks, Time until,
                    unsigned workers) {
  SyntheticWorld w(shards, ticks);
  w.coord.run(until, workers);
  RunResult r;
  r.hash = w.coord.world_hash();
  r.fired = w.coord.merged_perf().events_fired;
  r.acc = w.acc;
  r.arrivals = w.arrivals;
  for (auto& loop : w.loops) r.clocks.push_back(loop->now());
  return r;
}

TEST(ShardCoordinator, HashByteIdenticalAcrossWorkerCounts) {
  const Time until = from_millis(3);
  const RunResult base = run_world(8, 40, until, 1);
  EXPECT_GT(base.fired, 0u);
  EXPECT_GT(base.arrivals[1], 0u);
  for (const unsigned workers : {2u, 4u, 8u}) {
    const RunResult r = run_world(8, 40, until, workers);
    EXPECT_EQ(r.hash, base.hash) << "workers=" << workers;
    EXPECT_EQ(r.fired, base.fired) << "workers=" << workers;
    EXPECT_EQ(r.acc, base.acc) << "workers=" << workers;
    EXPECT_EQ(r.arrivals, base.arrivals) << "workers=" << workers;
    EXPECT_EQ(r.clocks, base.clocks) << "workers=" << workers;
  }
}

TEST(ShardCoordinator, DrainToCompletionMatchesBoundedRun) {
  // until = -1 runs until every loop and inbox drains; the event streams
  // must still be worker-count independent.
  const RunResult base = run_world(4, 30, -1, 1);
  for (const unsigned workers : {2u, 4u}) {
    const RunResult r = run_world(4, 30, -1, workers);
    EXPECT_EQ(r.hash, base.hash);
    EXPECT_EQ(r.acc, base.acc);
  }
}

TEST(ShardCoordinator, CrossShardDeliveryAtExactLookaheadBoundary) {
  // A post whose arrival lands exactly one lookahead ahead — the tightest
  // legal cross-shard delivery — must fire at precisely that virtual
  // time in the destination, at every worker count.
  for (const unsigned workers : {1u, 2u}) {
    std::vector<std::unique_ptr<EventLoop>> loops;
    ShardCoordinator coord;
    for (int s = 0; s < 2; ++s) {
      loops.push_back(std::make_unique<EventLoop>());
      coord.add_shard(loops.back().get());
    }
    coord.set_lookahead(kLookahead);
    Time boundary_fire = -1;
    Time far_fire = -1;
    loops[0]->schedule_at(0, [&] {
      coord.post(0, 1, kLookahead,
                 [&] { boundary_fire = loops[1]->now(); });
      coord.post(0, 1, 3 * kLookahead + from_micros(50),
                 [&] { far_fire = loops[1]->now(); });
    });
    coord.run(from_millis(1), workers);
    EXPECT_EQ(boundary_fire, kLookahead) << "workers=" << workers;
    EXPECT_EQ(far_fire, 3 * kLookahead + from_micros(50))
        << "workers=" << workers;
    EXPECT_EQ(loops[0]->now(), from_millis(1));
    EXPECT_EQ(loops[1]->now(), from_millis(1));
  }
}

TEST(ShardCoordinator, DrainOrderIsWhenThenSourceThenPostIndex) {
  // Three sources post events for the same destination instant; the
  // drain must schedule them by (when, src shard, post index), never by
  // which worker drained first.
  for (const unsigned workers : {1u, 4u}) {
    std::vector<std::unique_ptr<EventLoop>> loops;
    ShardCoordinator coord;
    for (int s = 0; s < 4; ++s) {
      loops.push_back(std::make_unique<EventLoop>());
      coord.add_shard(loops.back().get());
    }
    coord.set_lookahead(kLookahead);
    std::vector<int> order;
    const Time when = kLookahead + from_micros(1);
    // Post from sources 3, 1, 2 (registration order must not matter) —
    // plus a second event from source 1 to exercise the post index.
    loops[3]->schedule_at(0, [&] {
      coord.post(3, 0, when, [&] { order.push_back(30); });
    });
    loops[1]->schedule_at(0, [&] {
      coord.post(1, 0, when, [&] { order.push_back(10); });
      coord.post(1, 0, when, [&] { order.push_back(11); });
    });
    loops[2]->schedule_at(0, [&] {
      coord.post(2, 0, when, [&] { order.push_back(20); });
    });
    coord.run(from_millis(1), workers);
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 30}))
        << "workers=" << workers;
  }
}

TEST(ShardCoordinator, SkipAheadOverIdleStretches) {
  // Two events a long idle gap apart: the coordinator must not grind
  // through (gap / lookahead) empty epochs. events_fired and the final
  // clock prove the far event still fires at its exact time.
  std::vector<std::unique_ptr<EventLoop>> loops;
  ShardCoordinator coord;
  for (int s = 0; s < 2; ++s) {
    loops.push_back(std::make_unique<EventLoop>());
    coord.add_shard(loops.back().get());
  }
  coord.set_lookahead(kLookahead);
  Time fired_at = -1;
  loops[0]->schedule_at(from_micros(5), [] {});
  loops[1]->schedule_at(from_seconds(10), [&] { fired_at = loops[1]->now(); });
  coord.run(from_seconds(11), 2);
  EXPECT_EQ(fired_at, from_seconds(10));
  EXPECT_EQ(coord.merged_perf().events_fired, 2u);
}

TEST(ShardCoordinator, MergedPerfIsShardIdOrderAndWorkerInvariant) {
  SyntheticWorld w(4, 20);
  w.coord.run(from_millis(2), 4);
  // Manual shard-id-order merge must match what the coordinator reports.
  PerfCounters manual;
  for (std::size_t s = 0; s < 4; ++s) manual.merge(w.loops[s]->perf());
  const PerfCounters merged = w.coord.merged_perf();
  EXPECT_EQ(merged.determinism_hash, manual.determinism_hash);
  EXPECT_EQ(merged.events_fired, manual.events_fired);
  EXPECT_EQ(merged.events_scheduled, manual.events_scheduled);
}

TEST(ShardCoordinator, CallbackFailurePropagatesWithoutDeadlock) {
  for (const unsigned workers : {1u, 2u}) {
    std::vector<std::unique_ptr<EventLoop>> loops;
    ShardCoordinator coord;
    for (int s = 0; s < 2; ++s) {
      loops.push_back(std::make_unique<EventLoop>());
      coord.add_shard(loops.back().get());
    }
    coord.set_lookahead(kLookahead);
    loops[1]->schedule_at(from_micros(10), [] {
      throw CheckFailure("synthetic shard failure");
    });
    loops[0]->schedule_at(from_micros(1), [] {});
    EXPECT_THROW(coord.run(from_millis(1), workers), CheckFailure);
  }
}

TEST(SummaryMerge, FixedOrderMergesAreByteIdentical) {
  // Chan's combination is order-sensitive in floating point; the contract
  // is that merging the same partials in the same (shard-id) order twice
  // yields bit-identical state. See Summary::merge.
  std::vector<Summary> parts(4);
  std::uint64_t x = 88172645463325252ULL;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    for (int i = 0; i < 1000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      parts[s].add(static_cast<double>(x % 100000) / 7.0);
    }
  }
  Summary a;
  for (const Summary& p : parts) a.merge(p);
  Summary b;
  for (const Summary& p : parts) b.merge(p);
  // Bit-level equality, not EXPECT_DOUBLE_EQ: the JSON writers print
  // these values, and the bytes must reproduce.
  const double ma = a.mean(), mb = b.mean();
  const double va = a.stddev(), vb = b.stddev();
  EXPECT_EQ(std::memcmp(&ma, &mb, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&va, &vb, sizeof(double)), 0);
  EXPECT_EQ(a.percentile(99), b.percentile(99));
}

}  // namespace
}  // namespace hipcloud::sim
