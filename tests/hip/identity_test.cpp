#include "hip/identity.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace hipcloud::hip {
namespace {

class IdentityTest : public ::testing::TestWithParam<HiAlgorithm> {
 protected:
  HostIdentity make(std::uint64_t seed = 1) {
    crypto::HmacDrbg drbg(seed, "identity-test");
    // 768-bit RSA keeps the test fast; protocol code uses 1024+.
    return HostIdentity::generate(drbg, GetParam(), 768);
  }
};

TEST_P(IdentityTest, HitHasOrchidPrefix) {
  const HostIdentity hi = make();
  EXPECT_TRUE(hi.hit().is_hit());
  EXPECT_FALSE(hi.hit().is_teredo());
}

TEST_P(IdentityTest, HitMatchesDerivation) {
  const HostIdentity hi = make();
  EXPECT_EQ(HostIdentity::derive_hit(hi.public_encoding()), hi.hit());
}

TEST_P(IdentityTest, DistinctKeysGiveDistinctHits) {
  EXPECT_NE(make(1).hit(), make(2).hit());
}

TEST_P(IdentityTest, DeterministicFromSeed) {
  EXPECT_EQ(make(7).hit(), make(7).hit());
}

TEST_P(IdentityTest, SignVerifyRoundTrip) {
  const HostIdentity hi = make();
  const auto msg = crypto::to_bytes("base exchange payload");
  const auto sig = hi.sign(msg);
  EXPECT_TRUE(HostIdentity::verify(hi.public_encoding(), msg, sig));
}

TEST_P(IdentityTest, VerifyRejectsWrongMessage) {
  const HostIdentity hi = make();
  const auto sig = hi.sign(crypto::to_bytes("A"));
  EXPECT_FALSE(
      HostIdentity::verify(hi.public_encoding(), crypto::to_bytes("B"), sig));
}

TEST_P(IdentityTest, VerifyRejectsWrongKey) {
  const HostIdentity a = make(1);
  const HostIdentity b = make(2);
  const auto msg = crypto::to_bytes("m");
  EXPECT_FALSE(HostIdentity::verify(b.public_encoding(), msg, a.sign(msg)));
}

TEST_P(IdentityTest, VerifyRejectsGarbage) {
  const HostIdentity hi = make();
  EXPECT_FALSE(HostIdentity::verify({}, crypto::to_bytes("m"),
                                    crypto::to_bytes("sig")));
  EXPECT_FALSE(HostIdentity::verify(hi.public_encoding(),
                                    crypto::to_bytes("m"),
                                    crypto::Bytes(16, 0)));
}

TEST_P(IdentityTest, EncodingCarriesAlgorithm) {
  const HostIdentity hi = make();
  ASSERT_FALSE(hi.public_encoding().empty());
  EXPECT_EQ(static_cast<HiAlgorithm>(hi.public_encoding()[0]),
            hi.algorithm());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, IdentityTest,
                         ::testing::Values(HiAlgorithm::kRsa,
                                           HiAlgorithm::kEcdsa),
                         [](const auto& name_info) {
                           return name_info.param == HiAlgorithm::kRsa ? "Rsa"
                                                                  : "Ecdsa";
                         });

TEST(IdentityMixed, RsaAndEcdsaHitsDiffer) {
  crypto::HmacDrbg d1(1, "x"), d2(1, "x");
  const auto rsa = HostIdentity::generate(d1, HiAlgorithm::kRsa, 768);
  const auto ec = HostIdentity::generate(d2, HiAlgorithm::kEcdsa);
  EXPECT_NE(rsa.hit(), ec.hit());
}

TEST(IdentityMixed, CrossAlgorithmVerifyFails) {
  crypto::HmacDrbg d1(1, "x"), d2(2, "y");
  const auto rsa = HostIdentity::generate(d1, HiAlgorithm::kRsa, 768);
  const auto ec = HostIdentity::generate(d2, HiAlgorithm::kEcdsa);
  const auto msg = crypto::to_bytes("m");
  EXPECT_FALSE(HostIdentity::verify(ec.public_encoding(), msg, rsa.sign(msg)));
  EXPECT_FALSE(HostIdentity::verify(rsa.public_encoding(), msg, ec.sign(msg)));
}

}  // namespace
}  // namespace hipcloud::hip
