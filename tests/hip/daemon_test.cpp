#include "hip/daemon.hpp"

#include <gtest/gtest.h>

#include "net/tcp.hpp"
#include "net/udp.hpp"

namespace hipcloud::hip {
namespace {

using crypto::Bytes;
using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;
using net::LinkConfig;

HostIdentity make_identity(const std::string& name,
                           HiAlgorithm algo = HiAlgorithm::kRsa) {
  crypto::HmacDrbg drbg(crypto::to_bytes("id:" + name));
  return HostIdentity::generate(drbg, algo, 1024);
}

/// Two HIP hosts across a router; each side knows the other's HIT and
/// locator a priori (the "hip hosts file" deployment the paper uses).
struct HipPair {
  net::Network net{42};
  net::Node* a;
  net::Node* r;
  net::Node* b;
  std::unique_ptr<HipDaemon> ha;
  std::unique_ptr<HipDaemon> hb;

  explicit HipPair(HipConfig cfg_a = {}, HipConfig cfg_b = {},
                   LinkConfig link = {}) {
    a = net.add_node("host-a", 3e9);
    r = net.add_node("router");
    b = net.add_node("host-b", 3e9);
    const auto la = net.connect(a, r, link);
    const auto lb = net.connect(r, b, link);
    a->add_address(la.iface_a, Ipv4Addr(10, 0, 1, 1));
    r->add_address(la.iface_b, Ipv4Addr(10, 0, 1, 254));
    r->add_address(lb.iface_a, Ipv4Addr(10, 0, 2, 254));
    b->add_address(lb.iface_b, Ipv4Addr(10, 0, 2, 1));
    a->set_default_route(la.iface_a);
    b->set_default_route(lb.iface_b);
    r->add_route(IpAddr(Ipv4Addr(10, 0, 1, 0)), 24, la.iface_b);
    r->add_route(IpAddr(Ipv4Addr(10, 0, 2, 0)), 24, lb.iface_a);
    r->set_forwarding(true);

    ha = std::make_unique<HipDaemon>(a, make_identity("a"), cfg_a);
    hb = std::make_unique<HipDaemon>(b, make_identity("b"), cfg_b);
    ha->add_peer(hb->hit(), IpAddr(Ipv4Addr(10, 0, 2, 1)));
    hb->add_peer(ha->hit(), IpAddr(Ipv4Addr(10, 0, 1, 1)));
  }
};

TEST(HipDaemon, BexEstablishesBothSides) {
  HipPair topo;
  sim::Duration latency = 0;
  topo.ha->on_established(
      [&](const net::Ipv6Addr&, sim::Duration l) { latency = l; });
  topo.ha->initiate(topo.hb->hit());
  topo.net.loop().run();
  EXPECT_EQ(topo.ha->state(topo.hb->hit()), AssocState::kEstablished);
  EXPECT_EQ(topo.hb->state(topo.ha->hit()), AssocState::kEstablished);
  EXPECT_GT(latency, 0);
  EXPECT_EQ(topo.ha->stats().bex_completed, 1u);
  EXPECT_EQ(topo.hb->stats().bex_completed, 1u);
  EXPECT_EQ(topo.ha->stats().auth_failures, 0u);
}

TEST(HipDaemon, UdpOverHits) {
  HipPair topo;
  net::UdpStack ua(topo.a), ub(topo.b);
  Bytes received;
  Endpoint from{};
  ub.bind(7777, [&](const Endpoint& src, const IpAddr&, Bytes data) {
    from = src;
    received = std::move(data);
  });
  // Sending to the HIT lazily triggers the BEX, then data flows via ESP.
  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777},
          crypto::to_bytes("hello over hip"));
  topo.net.loop().run();
  EXPECT_EQ(received, crypto::to_bytes("hello over hip"));
  EXPECT_EQ(from.addr, IpAddr(topo.ha->hit()));  // app sees HITs
  EXPECT_GT(topo.ha->stats().esp_packets_out, 0u);
  EXPECT_GT(topo.hb->stats().esp_packets_in, 0u);
}

TEST(HipDaemon, UdpOverLsis) {
  HipPair topo;
  net::UdpStack ua(topo.a), ub(topo.b);
  const Ipv4Addr peer_lsi = *topo.ha->lsi_for_peer(topo.hb->hit());
  EXPECT_TRUE(peer_lsi.is_lsi());
  Bytes received;
  Endpoint from{};
  ub.bind(7777, [&](const Endpoint& src, const IpAddr&, Bytes data) {
    from = src;
    received = std::move(data);
  });
  ua.send(5555, Endpoint{IpAddr(peer_lsi), 7777},
          crypto::to_bytes("ipv4 app over hip"));
  topo.net.loop().run();
  EXPECT_EQ(received, crypto::to_bytes("ipv4 app over hip"));
  // The receiving app sees the sender's LSI (IPv4 world preserved).
  EXPECT_TRUE(from.addr.is_lsi());
}

TEST(HipDaemon, TcpOverHits) {
  HipPair topo;
  net::TcpStack ta(topo.a), tb(topo.b);
  Bytes at_server, at_client;
  tb.listen(80, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_data([&, c = conn.get()](Bytes data) {
      at_server.insert(at_server.end(), data.begin(), data.end());
      c->send(crypto::to_bytes("response"));
    });
  });
  auto conn = ta.connect(Endpoint{IpAddr(topo.hb->hit()), 80});
  conn->on_connect([&] { conn->send(crypto::to_bytes("request")); });
  conn->on_data([&](Bytes data) {
    at_client.insert(at_client.end(), data.begin(), data.end());
  });
  topo.net.loop().run();
  EXPECT_EQ(at_server, crypto::to_bytes("request"));
  EXPECT_EQ(at_client, crypto::to_bytes("response"));
  // MSS shrank to fit ESP overhead.
  EXPECT_LT(conn->mss(), 1440u);
}

TEST(HipDaemon, BulkTcpTransferOverHip) {
  HipPair topo;
  net::TcpStack ta(topo.a), tb(topo.b);
  constexpr std::size_t kTotal = 200000;
  std::size_t received = 0;
  tb.listen(80, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_data([&](Bytes data) { received += data.size(); });
  });
  auto conn = ta.connect(Endpoint{IpAddr(topo.hb->hit()), 80});
  conn->on_connect([&] { conn->send(Bytes(kTotal, 0x7e)); });
  topo.net.loop().run(60 * sim::kSecond);
  EXPECT_EQ(received, kTotal);
}

TEST(HipDaemon, EavesdropperSeesOnlyCiphertext) {
  HipPair topo;
  // Tap the router: capture every forwarded packet's payload.
  std::vector<Bytes> captured;
  topo.r->set_forward_hook([&](net::Packet& pkt, std::size_t) {
    captured.push_back(pkt.payload);
    return true;
  });
  net::UdpStack ua(topo.a), ub(topo.b);
  ub.bind(7777, [](const Endpoint&, const IpAddr&, Bytes) {});
  const Bytes secret = crypto::to_bytes("tenant-secret-0123456789-abcdef");
  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, secret);
  topo.net.loop().run();
  ASSERT_FALSE(captured.empty());
  for (const auto& wire : captured) {
    EXPECT_EQ(std::search(wire.begin(), wire.end(), secret.begin(),
                          secret.end()),
              wire.end())
        << "plaintext leaked on the shared network";
  }
}

TEST(HipDaemon, AclDenyBlocksBex) {
  HipPair topo;
  topo.hb->deny(topo.ha->hit());  // hosts.deny on the responder
  topo.ha->initiate(topo.hb->hit());
  topo.net.loop().run(30 * sim::kSecond);
  EXPECT_NE(topo.ha->state(topo.hb->hit()), AssocState::kEstablished);
  EXPECT_GT(topo.hb->stats().acl_rejects, 0u);
  EXPECT_EQ(topo.ha->stats().bex_failed, 1u);
}

TEST(HipDaemon, DefaultDenyWithExplicitAllow) {
  HipConfig cfg;
  HipPair topo(cfg, cfg);
  topo.hb->set_default_accept(false);
  topo.hb->allow(topo.ha->hit());
  topo.ha->initiate(topo.hb->hit());
  topo.net.loop().run();
  EXPECT_EQ(topo.ha->state(topo.hb->hit()), AssocState::kEstablished);
}

TEST(HipDaemon, EcdsaIdentitiesInterop) {
  HipPair topo;  // RSA pair already built; build an ECDSA pair instead
  net::Network net2{43};
  auto* x = net2.add_node("x", 3e9);
  auto* y = net2.add_node("y", 3e9);
  const auto link = net2.connect(x, y, {});
  x->add_address(link.iface_a, Ipv4Addr(10, 0, 0, 1));
  y->add_address(link.iface_b, Ipv4Addr(10, 0, 0, 2));
  x->set_default_route(link.iface_a);
  y->set_default_route(link.iface_b);
  HipDaemon hx(x, make_identity("x", HiAlgorithm::kEcdsa));
  HipDaemon hy(y, make_identity("y", HiAlgorithm::kEcdsa));
  hx.add_peer(hy.hit(), IpAddr(Ipv4Addr(10, 0, 0, 2)));
  hy.add_peer(hx.hit(), IpAddr(Ipv4Addr(10, 0, 0, 1)));
  hx.initiate(hy.hit());
  net2.loop().run();
  EXPECT_EQ(hx.state(hy.hit()), AssocState::kEstablished);
}

TEST(HipDaemon, PuzzleDifficultySlowsBex) {
  HipConfig easy;
  easy.puzzle_difficulty = 0;
  HipConfig hard;
  hard.puzzle_difficulty = 16;

  sim::Duration easy_latency = 0, hard_latency = 0;
  {
    HipPair topo(easy, easy);
    topo.ha->on_established(
        [&](const net::Ipv6Addr&, sim::Duration l) { easy_latency = l; });
    topo.ha->initiate(topo.hb->hit());
    topo.net.loop().run();
  }
  {
    HipPair topo(easy, hard);  // responder sets the difficulty
    topo.ha->on_established(
        [&](const net::Ipv6Addr&, sim::Duration l) { hard_latency = l; });
    topo.ha->initiate(topo.hb->hit());
    topo.net.loop().run();
  }
  EXPECT_GT(easy_latency, 0);
  EXPECT_GT(hard_latency, easy_latency * 2);
}

TEST(HipDaemon, AdaptivePuzzleRaisesDifficultyUnderLoad) {
  HipConfig cfg;
  cfg.puzzle_difficulty = 4;
  cfg.adaptive_puzzle = true;
  cfg.adaptive_threshold_rps = 2.0;
  HipPair topo(cfg, cfg);
  EXPECT_EQ(topo.hb->current_puzzle_difficulty(), 4);
  // Simulate an I1 flood reaching the responder.
  for (int i = 0; i < 64; ++i) {
    HipMessage i1;
    i1.type = MsgType::kI1;
    i1.sender_hit = net::Ipv6Addr::parse("2001:10::bad");
    i1.receiver_hit = topo.hb->hit();
    net::Packet pkt;
    pkt.src = Ipv4Addr(10, 0, 1, 1);
    pkt.dst = Ipv4Addr(10, 0, 2, 1);
    pkt.proto = net::IpProto::kHip;
    pkt.payload = i1.serialize();
    pkt.stamp_l3_overhead();
    topo.b->deliver(std::move(pkt), 0);
  }
  topo.net.loop().run(sim::kSecond / 2);
  EXPECT_GT(topo.hb->current_puzzle_difficulty(), 4);
}

TEST(HipDaemon, MobilityLocatorUpdate) {
  HipPair topo;
  net::UdpStack ua(topo.a), ub(topo.b);
  int received = 0;
  ub.bind(7777, [&](const Endpoint&, const IpAddr&, Bytes) { ++received; });
  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, Bytes(10, 1));
  topo.net.loop().run();
  ASSERT_EQ(received, 1);

  // Host A moves: new address on the same interface (e.g. VM migrated to
  // a host in another subnet that is also reachable via the router).
  topo.a->add_address(0, Ipv4Addr(10, 0, 1, 99));
  topo.r->add_route(IpAddr(Ipv4Addr(10, 0, 1, 99)), 32, 0);
  topo.ha->move_to(IpAddr(Ipv4Addr(10, 0, 1, 99)));
  topo.net.loop().run();
  EXPECT_GT(topo.hb->stats().updates_processed, 0u);
  EXPECT_GT(topo.ha->stats().updates_processed, 0u);  // echo confirmed

  // Traffic continues after the move.
  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, Bytes(10, 2));
  topo.net.loop().run();
  EXPECT_EQ(received, 2);
}

TEST(HipDaemon, CloseTearsDownAssociation) {
  HipPair topo;
  topo.ha->initiate(topo.hb->hit());
  topo.net.loop().run();
  ASSERT_EQ(topo.ha->state(topo.hb->hit()), AssocState::kEstablished);
  topo.ha->close_association(topo.hb->hit());
  topo.net.loop().run();
  EXPECT_EQ(topo.ha->state(topo.hb->hit()), AssocState::kUnassociated);
  EXPECT_EQ(topo.hb->state(topo.ha->hit()), AssocState::kUnassociated);
}

TEST(HipDaemon, BexFailsWithoutLocator) {
  HipPair topo;
  crypto::HmacDrbg drbg(9, "stranger");
  const auto stranger = HostIdentity::generate(drbg, HiAlgorithm::kRsa, 1024);
  topo.ha->initiate(stranger.hit());
  topo.net.loop().run(10 * sim::kSecond);
  EXPECT_NE(topo.ha->state(stranger.hit()), AssocState::kEstablished);
}

TEST(HipDaemon, BexRetriesOnLoss) {
  LinkConfig lossy;
  lossy.loss_rate = 0.3;
  HipPair topo({}, {}, lossy);
  topo.ha->initiate(topo.hb->hit());
  topo.net.loop().run(60 * sim::kSecond);
  // With retries, the BEX should still complete w.h.p. at 30% loss.
  EXPECT_EQ(topo.ha->state(topo.hb->hit()), AssocState::kEstablished);
}

TEST(HipDaemon, SimultaneousInitiationConverges) {
  HipPair topo;
  topo.ha->initiate(topo.hb->hit());
  topo.hb->initiate(topo.ha->hit());
  topo.net.loop().run(30 * sim::kSecond);
  EXPECT_EQ(topo.ha->state(topo.hb->hit()), AssocState::kEstablished);
  EXPECT_EQ(topo.hb->state(topo.ha->hit()), AssocState::kEstablished);
  // And data flows.
  net::UdpStack ua(topo.a), ub(topo.b);
  int got = 0;
  ub.bind(7, [&](const Endpoint&, const IpAddr&, Bytes) { ++got; });
  ua.send(9, Endpoint{IpAddr(topo.hb->hit()), 7}, Bytes(4, 0));
  topo.net.loop().run();
  EXPECT_EQ(got, 1);
}

TEST(HipDaemon, LsiMappingsAreStable) {
  HipPair topo;
  const auto lsi1 = topo.ha->lsi_for_peer(topo.hb->hit());
  ASSERT_TRUE(lsi1.has_value());
  EXPECT_EQ(topo.ha->add_peer(topo.hb->hit(), IpAddr(Ipv4Addr(10, 0, 2, 1))),
            *lsi1);
  EXPECT_EQ(topo.ha->peer_for_lsi(*lsi1),
            std::optional<net::Ipv6Addr>(topo.hb->hit()));
  EXPECT_EQ(topo.ha->peer_for_lsi(Ipv4Addr(1, 0, 0, 250)), std::nullopt);
}

}  // namespace
}  // namespace hipcloud::hip
