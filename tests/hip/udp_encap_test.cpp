// Native HIP NAT traversal (UDP encapsulation, the feature the paper's
// implementations lacked): BEX and ESP through a NAT without Teredo.

#include "hip/udp_encap.hpp"

#include <gtest/gtest.h>

#include "hip/daemon.hpp"
#include "net/nat.hpp"
#include "net/tcp.hpp"

namespace hipcloud::hip {
namespace {

using crypto::Bytes;
using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

HostIdentity make_identity(const std::string& name) {
  crypto::HmacDrbg drbg(crypto::to_bytes("encap:" + name));
  return HostIdentity::generate(drbg, HiAlgorithm::kRsa, 1024);
}

/// initiator (192.168.7.2) -- nat -- responder (9.0.0.10)
struct NattedHipTopo {
  net::Network net{83};
  net::Node *initiator, *natbox, *responder;
  std::unique_ptr<net::Nat> nat;
  std::unique_ptr<HipDaemon> hi, hr;
  std::unique_ptr<net::UdpStack> ui, ur;
  std::unique_ptr<UdpEncap> ei, er;

  NattedHipTopo() {
    initiator = net.add_node("initiator", 3e9);
    natbox = net.add_node("natbox");
    responder = net.add_node("responder", 3e9);
    const auto inside = net.connect(initiator, natbox, {});
    const auto outside = net.connect(natbox, responder, {});
    initiator->add_address(inside.iface_a, Ipv4Addr(192, 168, 7, 2));
    natbox->add_address(inside.iface_b, Ipv4Addr(192, 168, 7, 1));
    natbox->add_address(outside.iface_a, Ipv4Addr(9, 0, 0, 254));
    responder->add_address(outside.iface_b, Ipv4Addr(9, 0, 0, 10));
    initiator->set_default_route(inside.iface_a);
    responder->set_default_route(outside.iface_b);
    natbox->add_route(IpAddr(Ipv4Addr(192, 168, 7, 0)), 24, inside.iface_b);
    natbox->set_default_route(outside.iface_a);
    nat = std::make_unique<net::Nat>(natbox, inside.iface_b,
                                     outside.iface_a, Ipv4Addr(9, 0, 0, 1));
    responder->add_route(IpAddr(Ipv4Addr(9, 0, 0, 1)), 32, 0);

    // Order: daemon first, encapsulation shim second.
    hi = std::make_unique<HipDaemon>(initiator, make_identity("i"));
    hr = std::make_unique<HipDaemon>(responder, make_identity("r"));
    ui = std::make_unique<net::UdpStack>(initiator);
    ur = std::make_unique<net::UdpStack>(responder);
    // The NATted side binds an ephemeral port; the public side the
    // well-known one.
    ei = std::make_unique<UdpEncap>(initiator, ui.get(), 0);
    er = std::make_unique<UdpEncap>(responder, ur.get(), kHipNatPort);

    // The initiator knows the responder's public locator and tunnels to
    // it; the responder learns the initiator's NAT mapping on first
    // contact.
    hi->add_peer(hr->hit(), IpAddr(Ipv4Addr(9, 0, 0, 10)));
    ei->add_encap_peer(IpAddr(Ipv4Addr(9, 0, 0, 10)));
  }
};

TEST(UdpEncap, BexThroughNat) {
  NattedHipTopo topo;
  topo.hi->initiate(topo.hr->hit());
  topo.net.loop().run();
  EXPECT_EQ(topo.hi->state(topo.hr->hit()), AssocState::kEstablished);
  EXPECT_EQ(topo.hr->state(topo.hi->hit()), AssocState::kEstablished);
  EXPECT_GT(topo.ei->encapsulated(), 0u);
  EXPECT_GT(topo.er->decapsulated(), 0u);
}

TEST(UdpEncap, ResponderLearnsNatMapping) {
  NattedHipTopo topo;
  topo.hi->initiate(topo.hr->hit());
  topo.net.loop().run();
  // The responder's daemon must see the NAT pool address as the peer
  // locator, never the private 192.168.7.2.
  // (Observable through successful two-way traffic below.)
  int got = 0;
  topo.ur->bind(7, [&](const Endpoint&, const IpAddr&, Bytes) { ++got; });
  net::UdpStack* app_stack = topo.ui.get();
  app_stack->bind(9, [](const Endpoint&, const IpAddr&, Bytes) {});
  app_stack->send(9, Endpoint{IpAddr(topo.hr->hit()), 7}, Bytes(32, 1));
  topo.net.loop().run();
  EXPECT_EQ(got, 1);
}

TEST(UdpEncap, EspDataFlowsBothWays) {
  NattedHipTopo topo;
  int at_responder = 0, at_initiator = 0;
  topo.ur->bind(7, [&](const Endpoint& from, const IpAddr&, Bytes) {
    ++at_responder;
    topo.ur->send(7, from, crypto::to_bytes("pong"));
  });
  topo.ui->bind(9, [&](const Endpoint&, const IpAddr&, Bytes) {
    ++at_initiator;
  });
  for (int i = 0; i < 5; ++i) {
    topo.ui->send(9, Endpoint{IpAddr(topo.hr->hit()), 7}, Bytes(64, 0x5a));
  }
  topo.net.loop().run();
  EXPECT_EQ(at_responder, 5);
  EXPECT_EQ(at_initiator, 5);
}

TEST(UdpEncap, TcpOverEncapsulatedHip) {
  NattedHipTopo topo;
  net::TcpStack ti(topo.initiator), tr(topo.responder);
  std::size_t received = 0;
  tr.listen(80, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_data([&](Bytes data) { received += data.size(); });
  });
  auto conn = ti.connect(Endpoint{IpAddr(topo.hr->hit()), 80});
  conn->on_connect([&] { conn->send(Bytes(50000, 0x42)); });
  topo.net.loop().run(60 * sim::kSecond);
  EXPECT_EQ(received, 50000u);
  // MSS accounts for ESP + UDP encapsulation.
  EXPECT_LE(conn->mss(), 1500u - 40 - 20 - esp_overhead(
                             EspSuite::kAes128CtrSha256) -
                             UdpEncap::kOverhead);
}

TEST(UdpEncap, KeepalivesFlow) {
  NattedHipTopo topo;
  topo.hi->initiate(topo.hr->hit());
  topo.ei->enable_keepalives(5 * sim::kSecond);
  topo.net.loop().run(30 * sim::kSecond);
  EXPECT_GE(topo.ei->keepalives_sent(), 5u);
}

TEST(UdpEncap, NonTunnelledTrafficUnaffected) {
  NattedHipTopo topo;
  // Plain UDP from responder to its own subnet is not intercepted.
  int got = 0;
  topo.ur->bind(70, [&](const Endpoint&, const IpAddr&, Bytes) { ++got; });
  topo.ur->send(71, Endpoint{IpAddr(Ipv4Addr(9, 0, 0, 10)), 70},
                Bytes(4, 0));
  topo.net.loop().run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace hipcloud::hip
