#include "hip/wire.hpp"

#include <gtest/gtest.h>

namespace hipcloud::hip {
namespace {

HipMessage sample() {
  HipMessage msg;
  msg.type = MsgType::kI2;
  msg.sender_hit = net::Ipv6Addr::parse("2001:10::aa");
  msg.receiver_hit = net::Ipv6Addr::parse("2001:10::bb");
  msg.set_param(ParamType::kHostId, crypto::to_bytes("host-identity"));
  msg.set_u64(ParamType::kSeq, 42);
  return msg;
}

TEST(HipWire, SerializeParseRoundTrip) {
  const HipMessage msg = sample();
  const HipMessage back = HipMessage::parse(msg.serialize());
  EXPECT_EQ(back.type, MsgType::kI2);
  EXPECT_EQ(back.sender_hit, msg.sender_hit);
  EXPECT_EQ(back.receiver_hit, msg.receiver_hit);
  ASSERT_NE(back.param(ParamType::kHostId), nullptr);
  EXPECT_EQ(*back.param(ParamType::kHostId), crypto::to_bytes("host-identity"));
  EXPECT_EQ(back.u64(ParamType::kSeq), std::optional<std::uint64_t>(42));
}

TEST(HipWire, MissingParamIsNull) {
  const HipMessage msg = sample();
  EXPECT_EQ(msg.param(ParamType::kPuzzle), nullptr);
  EXPECT_FALSE(msg.has_param(ParamType::kPuzzle));
  EXPECT_EQ(msg.u64(ParamType::kAck), std::nullopt);
}

TEST(HipWire, ParseRejectsTruncated) {
  EXPECT_THROW(HipMessage::parse(crypto::Bytes(32, 0)), std::runtime_error);
  HipMessage msg = sample();
  crypto::Bytes wire = msg.serialize();
  wire.pop_back();  // cut the last parameter byte
  EXPECT_THROW(HipMessage::parse(wire), std::runtime_error);
}

TEST(HipWire, EmptyParamValue) {
  HipMessage msg = sample();
  msg.set_param(ParamType::kEchoRequestSigned, {});
  const HipMessage back = HipMessage::parse(msg.serialize());
  ASSERT_NE(back.param(ParamType::kEchoRequestSigned), nullptr);
  EXPECT_TRUE(back.param(ParamType::kEchoRequestSigned)->empty());
}

TEST(HipWire, SignedViewExcludesAuthParams) {
  HipMessage msg = sample();
  const crypto::Bytes before = msg.signed_view();
  msg.set_param(ParamType::kHmac, crypto::Bytes(32, 1));
  msg.set_param(ParamType::kSignature, crypto::Bytes(64, 2));
  EXPECT_EQ(msg.signed_view(), before);
  EXPECT_NE(msg.serialize(), before);
}

TEST(HipWire, HmacRoundTrip) {
  const crypto::Bytes key(32, 0x42);
  HipMessage msg = sample();
  msg.attach_hmac(key);
  EXPECT_TRUE(msg.check_hmac(key));
}

TEST(HipWire, HmacRejectsWrongKey) {
  HipMessage msg = sample();
  msg.attach_hmac(crypto::Bytes(32, 0x42));
  EXPECT_FALSE(msg.check_hmac(crypto::Bytes(32, 0x43)));
}

TEST(HipWire, HmacRejectsTamperedContent) {
  const crypto::Bytes key(32, 0x42);
  HipMessage msg = sample();
  msg.attach_hmac(key);
  msg.set_u64(ParamType::kSeq, 43);  // modify after MACing
  EXPECT_FALSE(msg.check_hmac(key));
}

TEST(HipWire, HmacAbsentFailsCheck) {
  EXPECT_FALSE(sample().check_hmac(crypto::Bytes(32, 0)));
}

TEST(HipWire, HmacSurvivesSerialization) {
  const crypto::Bytes key(32, 0x11);
  HipMessage msg = sample();
  msg.attach_hmac(key);
  const HipMessage back = HipMessage::parse(msg.serialize());
  EXPECT_TRUE(back.check_hmac(key));
}

TEST(HipWire, DescribeNamesTypes) {
  EXPECT_NE(sample().describe().find("I2"), std::string::npos);
}

}  // namespace
}  // namespace hipcloud::hip
