#include <gtest/gtest.h>

#include "hip/esp.hpp"
#include "hip/keymat.hpp"

namespace hipcloud::hip {
namespace {

using crypto::Bytes;

const net::Ipv6Addr kHitA = net::Ipv6Addr::parse("2001:10::a");
const net::Ipv6Addr kHitB = net::Ipv6Addr::parse("2001:10::b");

TEST(Keymat, BothSidesDeriveComplementaryKeys) {
  const Bytes secret(192, 0x5a);
  const Keymat a = Keymat::derive(secret, kHitA, kHitB);
  const Keymat b = Keymat::derive(secret, kHitB, kHitA);
  EXPECT_EQ(a.hip_hmac_out, b.hip_hmac_in);
  EXPECT_EQ(a.hip_hmac_in, b.hip_hmac_out);
  EXPECT_EQ(a.esp_enc_out, b.esp_enc_in);
  EXPECT_EQ(a.esp_auth_out, b.esp_auth_in);
  EXPECT_EQ(a.esp_enc_in, b.esp_enc_out);
  EXPECT_EQ(a.esp_auth_in, b.esp_auth_out);
}

TEST(Keymat, DirectionalKeysDiffer) {
  const Keymat a = Keymat::derive(Bytes(192, 1), kHitA, kHitB);
  EXPECT_NE(a.esp_enc_out, a.esp_enc_in);
  EXPECT_NE(a.hip_hmac_out, a.hip_hmac_in);
  EXPECT_NE(a.esp_enc_out, a.esp_auth_out);
}

TEST(Keymat, SecretSeparation) {
  const Keymat k1 = Keymat::derive(Bytes(192, 1), kHitA, kHitB);
  const Keymat k2 = Keymat::derive(Bytes(192, 2), kHitA, kHitB);
  EXPECT_NE(k1.esp_enc_out, k2.esp_enc_out);
}

TEST(Keymat, HitPairSeparation) {
  const net::Ipv6Addr other = net::Ipv6Addr::parse("2001:10::c");
  const Keymat k1 = Keymat::derive(Bytes(192, 1), kHitA, kHitB);
  const Keymat k2 = Keymat::derive(Bytes(192, 1), kHitA, other);
  EXPECT_NE(k1.esp_enc_out, k2.esp_enc_out);
}

class EspSuiteTest : public ::testing::TestWithParam<EspSuite> {
 protected:
  EspSa make_sa(std::uint32_t spi = 0x1000) {
    return EspSa(spi, GetParam(), Bytes(32, 0x11), Bytes(32, 0x22));
  }
};

TEST_P(EspSuiteTest, ProtectUnprotectRoundTrip) {
  EspSa tx = make_sa();
  EspSa rx = make_sa();
  const Bytes payload = crypto::to_bytes("GET /auction HTTP/1.1\r\n\r\n");
  const Bytes wire = tx.protect(6, EspSa::kModeHit, payload);
  const auto out = rx.unprotect(wire);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->inner_proto, 6);
  EXPECT_EQ(out->addr_mode, EspSa::kModeHit);
  EXPECT_EQ(out->payload, payload);
  EXPECT_EQ(out->seq, 1u);
}

TEST_P(EspSuiteTest, CiphertextHidesPlaintext) {
  EspSa tx = make_sa();
  const Bytes payload = crypto::to_bytes(
      "confidential tenant data that must not appear on the shared wire");
  const Bytes wire = tx.protect(6, EspSa::kModeHit, payload);
  // Search for the plaintext in the wire bytes.
  const bool leaked =
      std::search(wire.begin(), wire.end(), payload.begin(), payload.end()) !=
      wire.end();
  if (GetParam() == EspSuite::kNullSha256) {
    EXPECT_TRUE(leaked);  // NULL cipher: integrity only, by design
  } else {
    EXPECT_FALSE(leaked);
  }
}

TEST_P(EspSuiteTest, TamperedPacketRejected) {
  EspSa tx = make_sa();
  EspSa rx = make_sa();
  Bytes wire = tx.protect(17, EspSa::kModeLsi, Bytes(100, 7));
  wire[wire.size() / 2] ^= 0x01;
  EXPECT_FALSE(rx.unprotect(wire).has_value());
  EXPECT_EQ(rx.auth_failures(), 1u);
}

TEST_P(EspSuiteTest, IcvMismatchDetectedAtEveryBytePosition) {
  // The ICV check goes through crypto::ct_equal; corrupting any of its
  // 12 trailing bytes — first, middle, last — must reject the packet.
  EspSa tx = make_sa();
  Bytes wire = tx.protect(6, EspSa::kModeHit, Bytes(48, 0x3c));
  constexpr std::size_t kIcvSize = 12;
  ASSERT_GT(wire.size(), kIcvSize);
  for (std::size_t pos = 0; pos < kIcvSize; ++pos) {
    EspSa rx = make_sa();
    Bytes bad = wire;
    bad[bad.size() - kIcvSize + pos] ^= 0x01;
    EXPECT_FALSE(rx.unprotect(bad).has_value())
        << "flipped ICV byte " << pos << " was accepted";
    EXPECT_EQ(rx.auth_failures(), 1u);
  }
  EspSa rx = make_sa();
  EXPECT_TRUE(rx.unprotect(wire).has_value());
}

TEST_P(EspSuiteTest, ReplayIsDropped) {
  EspSa tx = make_sa();
  EspSa rx = make_sa();
  const Bytes wire = tx.protect(6, EspSa::kModeHit, Bytes(10, 1));
  EXPECT_TRUE(rx.unprotect(wire).has_value());
  EXPECT_FALSE(rx.unprotect(wire).has_value());
  EXPECT_EQ(rx.replay_drops(), 1u);
}

TEST_P(EspSuiteTest, OutOfOrderWithinWindowAccepted) {
  EspSa tx = make_sa();
  EspSa rx = make_sa();
  std::vector<Bytes> wires;
  for (int i = 0; i < 5; ++i) {
    wires.push_back(tx.protect(6, EspSa::kModeHit, Bytes(4, std::uint8_t(i))));
  }
  // Deliver 5th first, then the rest.
  EXPECT_TRUE(rx.unprotect(wires[4]).has_value());
  EXPECT_TRUE(rx.unprotect(wires[0]).has_value());
  EXPECT_TRUE(rx.unprotect(wires[2]).has_value());
  EXPECT_TRUE(rx.unprotect(wires[1]).has_value());
  EXPECT_TRUE(rx.unprotect(wires[3]).has_value());
  EXPECT_EQ(rx.replay_drops(), 0u);
}

TEST_P(EspSuiteTest, AncientSequenceOutsideWindowDropped) {
  EspSa tx = make_sa();
  EspSa rx = make_sa();
  const Bytes first = tx.protect(6, EspSa::kModeHit, Bytes(1, 1));
  // Advance far beyond the 64-packet window.
  Bytes last;
  for (int i = 0; i < 70; ++i) last = tx.protect(6, EspSa::kModeHit, Bytes(1, 2));
  EXPECT_TRUE(rx.unprotect(last).has_value());
  EXPECT_FALSE(rx.unprotect(first).has_value());
  EXPECT_EQ(rx.replay_drops(), 1u);
}

TEST_P(EspSuiteTest, WrongSpiRejected) {
  EspSa tx = make_sa(0x1000);
  EspSa rx = make_sa(0x2000);
  const Bytes wire = tx.protect(6, EspSa::kModeHit, Bytes(4, 0));
  EXPECT_FALSE(rx.unprotect(wire).has_value());
}

TEST_P(EspSuiteTest, WrongKeyRejected) {
  EspSa tx = make_sa();
  EspSa rx(0x1000, GetParam(), Bytes(32, 0x11), Bytes(32, 0x99));
  const Bytes wire = tx.protect(6, EspSa::kModeHit, Bytes(4, 0));
  EXPECT_FALSE(rx.unprotect(wire).has_value());
}

TEST_P(EspSuiteTest, EmptyPayload) {
  EspSa tx = make_sa();
  EspSa rx = make_sa();
  const auto out = rx.unprotect(tx.protect(6, EspSa::kModeHit, {}));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->payload.empty());
}

TEST_P(EspSuiteTest, MalformedWireRejected) {
  EspSa rx = make_sa();
  EXPECT_FALSE(rx.unprotect(Bytes(10, 0)).has_value());
  EXPECT_FALSE(rx.unprotect({}).has_value());
}

TEST_P(EspSuiteTest, OverheadIsBounded) {
  EspSa tx = make_sa();
  const Bytes wire = tx.protect(6, EspSa::kModeHit, Bytes(1000, 0));
  EXPECT_LE(wire.size(), 1000 + esp_overhead(GetParam()) + 16);
  EXPECT_GT(wire.size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    Suites, EspSuiteTest,
    ::testing::Values(EspSuite::kNullSha256, EspSuite::kAes128CtrSha256,
                      EspSuite::kAes128CbcSha256),
    [](const auto& name_info) -> std::string {
      switch (name_info.param) {
        case EspSuite::kNullSha256:
          return "Null";
        case EspSuite::kAes128CtrSha256:
          return "AesCtr";
        case EspSuite::kAes128CbcSha256:
          return "AesCbc";
      }
      return "Unknown";
    });

// --- RFC 4303 replay-window edge cases -------------------------------------

TEST(EspReplayWindow, DuplicateAtExactWindowEdge) {
  // 64-entry window: with highest=65, seq=2 sits at offset 63 (the last
  // in-window slot) and seq=1 at offset 64 (just outside).
  EspSa tx(1, EspSuite::kAes128CtrSha256, Bytes(32, 0x11), Bytes(32, 0x22));
  EspSa rx(1, EspSuite::kAes128CtrSha256, Bytes(32, 0x11), Bytes(32, 0x22));
  std::vector<Bytes> wires;
  for (int i = 0; i < 65; ++i) {
    wires.push_back(tx.protect(6, EspSa::kModeHit, Bytes(4, 0)));
  }
  EXPECT_TRUE(rx.unprotect(wires[64]).has_value());   // seq 65
  EXPECT_TRUE(rx.unprotect(wires[1]).has_value());    // seq 2: offset 63, in
  EXPECT_FALSE(rx.unprotect(wires[1]).has_value());   // duplicate at the edge
  EXPECT_FALSE(rx.unprotect(wires[0]).has_value());   // seq 1: offset 64, out
  EXPECT_EQ(rx.replay_drops(), 2u);
  EXPECT_EQ(rx.auth_failures(), 0u);
}

TEST(EspReplayWindow, ShiftOfSixtyFourOrMoreWipesWindow) {
  // A jump of >= 64 sequence numbers must zero the whole window — stale
  // bits surviving the shift would falsely flag unseen packets as replays.
  EspSa tx(1, EspSuite::kAes128CtrSha256, Bytes(32, 0x11), Bytes(32, 0x22));
  EspSa rx(1, EspSuite::kAes128CtrSha256, Bytes(32, 0x11), Bytes(32, 0x22));
  std::vector<Bytes> wires;
  for (int i = 0; i < 70; ++i) {
    wires.push_back(tx.protect(6, EspSa::kModeHit, Bytes(4, 0)));
  }
  EXPECT_TRUE(rx.unprotect(wires[0]).has_value());   // seq 1
  EXPECT_TRUE(rx.unprotect(wires[69]).has_value());  // seq 70: shift 69, wipe
  EXPECT_TRUE(rx.unprotect(wires[68]).has_value());  // seq 69 unseen: accept
  EXPECT_TRUE(rx.unprotect(wires[7]).has_value());   // seq 8: offset 62, in
  EXPECT_FALSE(rx.unprotect(wires[0]).has_value());  // seq 1: offset 69, out
  EXPECT_EQ(rx.replay_drops(), 1u);
}

TEST(EspReplayWindow, SequenceZeroRejected) {
  // seq 0 is never sent (the SA starts at 1); a crafted packet with a
  // valid ICV but seq 0 must still be dropped by the replay check.
  const Bytes auth_key(32, 0x22);
  EspSa rx(1, EspSuite::kNullSha256, {}, auth_key);
  Bytes wire;
  crypto::append_be(wire, 1, 4);  // SPI
  crypto::append_be(wire, 0, 4);  // SEQ = 0
  wire.insert(wire.end(), 16, 0);  // IV
  wire.push_back(6);               // inner proto
  wire.push_back(EspSa::kModeHit);
  Bytes icv = crypto::hmac_sha256(auth_key, wire);
  icv.resize(12);
  wire.insert(wire.end(), icv.begin(), icv.end());
  EXPECT_FALSE(rx.unprotect(wire).has_value());
  EXPECT_EQ(rx.replay_drops(), 1u);   // rejected by replay, not by auth
  EXPECT_EQ(rx.auth_failures(), 0u);
}

TEST(EspSa, SuiteNamesAreDistinct) {
  EXPECT_STRNE(esp_suite_name(EspSuite::kNullSha256),
               esp_suite_name(EspSuite::kAes128CtrSha256));
}

TEST(EspSa, RejectsShortKeys) {
  EXPECT_THROW(
      EspSa(1, EspSuite::kAes128CtrSha256, Bytes(8, 0), Bytes(32, 0)),
      std::invalid_argument);
}

}  // namespace
}  // namespace hipcloud::hip
