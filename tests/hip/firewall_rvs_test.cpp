#include <gtest/gtest.h>

#include "hip/daemon.hpp"
#include "hip/firewall.hpp"
#include "net/udp.hpp"

namespace hipcloud::hip {
namespace {

using crypto::Bytes;
using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

HostIdentity make_identity(const std::string& name) {
  crypto::HmacDrbg drbg(crypto::to_bytes("id:" + name));
  return HostIdentity::generate(drbg, HiAlgorithm::kRsa, 1024);
}

/// a -- fw -- b where fw is a HIP-aware firewall middlebox (the paper's
/// scenario II: the filter runs in the hypervisor, not the end host).
struct FirewalledPair {
  net::Network net{7};
  net::Node *a, *fw, *b;
  std::unique_ptr<HipDaemon> ha, hb;
  std::unique_ptr<HipFirewall> firewall;

  FirewalledPair() {
    a = net.add_node("a", 3e9);
    fw = net.add_node("fw");
    b = net.add_node("b", 3e9);
    const auto la = net.connect(a, fw, {});
    const auto lb = net.connect(fw, b, {});
    a->add_address(la.iface_a, Ipv4Addr(10, 0, 1, 1));
    fw->add_address(la.iface_b, Ipv4Addr(10, 0, 1, 254));
    fw->add_address(lb.iface_a, Ipv4Addr(10, 0, 2, 254));
    b->add_address(lb.iface_b, Ipv4Addr(10, 0, 2, 1));
    a->set_default_route(la.iface_a);
    b->set_default_route(lb.iface_b);
    fw->add_route(IpAddr(Ipv4Addr(10, 0, 1, 0)), 24, la.iface_b);
    fw->add_route(IpAddr(Ipv4Addr(10, 0, 2, 0)), 24, lb.iface_a);
    firewall = std::make_unique<HipFirewall>(fw, /*default_accept=*/false);
    ha = std::make_unique<HipDaemon>(a, make_identity("fw-a"));
    hb = std::make_unique<HipDaemon>(b, make_identity("fw-b"));
    ha->add_peer(hb->hit(), IpAddr(Ipv4Addr(10, 0, 2, 1)));
    hb->add_peer(ha->hit(), IpAddr(Ipv4Addr(10, 0, 1, 1)));
  }
};

TEST(HipFirewall, AllowedPairEstablishesAndFlows) {
  FirewalledPair topo;
  topo.firewall->allow_pair(topo.ha->hit(), topo.hb->hit());
  net::UdpStack ua(topo.a), ub(topo.b);
  Bytes got;
  ub.bind(7, [&](const Endpoint&, const IpAddr&, Bytes data) {
    got = std::move(data);
  });
  ua.send(9, Endpoint{IpAddr(topo.hb->hit()), 7}, crypto::to_bytes("ok"));
  topo.net.loop().run();
  EXPECT_EQ(got, crypto::to_bytes("ok"));
  EXPECT_GT(topo.firewall->learned_spis(), 0u);
  EXPECT_GT(topo.firewall->passed(), 0u);
}

TEST(HipFirewall, UnknownPairIsBlocked) {
  FirewalledPair topo;  // no allow_pair
  topo.ha->initiate(topo.hb->hit());
  topo.net.loop().run(10 * sim::kSecond);
  EXPECT_NE(topo.ha->state(topo.hb->hit()), AssocState::kEstablished);
  EXPECT_GT(topo.firewall->dropped(), 0u);
}

TEST(HipFirewall, DeniedPairIsBlockedEvenIfAllowed) {
  FirewalledPair topo;
  topo.firewall->allow_pair(topo.ha->hit(), topo.hb->hit());
  topo.firewall->deny_pair(topo.ha->hit(), topo.hb->hit());
  topo.ha->initiate(topo.hb->hit());
  topo.net.loop().run(10 * sim::kSecond);
  EXPECT_NE(topo.ha->state(topo.hb->hit()), AssocState::kEstablished);
}

TEST(HipFirewall, PlainTrafficBlockedInWhitelistMode) {
  FirewalledPair topo;
  topo.firewall->allow_pair(topo.ha->hit(), topo.hb->hit());
  net::UdpStack ua(topo.a), ub(topo.b);
  int got = 0;
  ub.bind(7, [&](const Endpoint&, const IpAddr&, Bytes) { ++got; });
  // Plain UDP to b's raw IP (no HIP): must be dropped by the middlebox.
  ua.send(9, Endpoint{IpAddr(Ipv4Addr(10, 0, 2, 1)), 7}, Bytes(4, 0));
  topo.net.loop().run();
  EXPECT_EQ(got, 0);
  EXPECT_GT(topo.firewall->dropped(), 0u);
}

TEST(HipFirewall, ForeignEspSpiIsBlocked) {
  FirewalledPair topo;
  topo.firewall->allow_pair(topo.ha->hit(), topo.hb->hit());
  topo.ha->initiate(topo.hb->hit());
  topo.net.loop().run();
  ASSERT_EQ(topo.ha->state(topo.hb->hit()), AssocState::kEstablished);
  const auto dropped_before = topo.firewall->dropped();
  // Inject an ESP packet with an unlearned SPI from a.
  net::Packet fake;
  fake.src = Ipv4Addr(10, 0, 1, 1);
  fake.dst = Ipv4Addr(10, 0, 2, 1);
  fake.proto = net::IpProto::kEsp;
  crypto::append_be(fake.payload, 0xdeadbeef, 4);
  fake.payload.resize(64, 0);
  fake.stamp_l3_overhead();
  topo.a->send_raw(std::move(fake));
  topo.net.loop().run();
  EXPECT_GT(topo.firewall->dropped(), dropped_before);
}

/// Rendezvous: initiator only knows the RVS locator; the responder has
/// registered its HIT there.
TEST(HipRendezvous, I1RelayedThroughRvs) {
  net::Network net{11};
  auto* initiator = net.add_node("initiator", 3e9);
  auto* rvs = net.add_node("rvs", 3e9);
  auto* responder = net.add_node("responder", 3e9);
  auto* core = net.add_node("core");
  const auto li = net.connect(initiator, core, {});
  const auto lr = net.connect(rvs, core, {});
  const auto lp = net.connect(responder, core, {});
  initiator->add_address(li.iface_a, Ipv4Addr(10, 1, 0, 1));
  rvs->add_address(lr.iface_a, Ipv4Addr(10, 2, 0, 1));
  responder->add_address(lp.iface_a, Ipv4Addr(10, 3, 0, 1));
  core->add_address(li.iface_b, Ipv4Addr(10, 1, 0, 254));
  core->add_address(lr.iface_b, Ipv4Addr(10, 2, 0, 254));
  core->add_address(lp.iface_b, Ipv4Addr(10, 3, 0, 254));
  initiator->set_default_route(li.iface_a);
  rvs->set_default_route(lr.iface_a);
  responder->set_default_route(lp.iface_a);
  core->add_route(IpAddr(Ipv4Addr(10, 1, 0, 0)), 24, li.iface_b);
  core->add_route(IpAddr(Ipv4Addr(10, 2, 0, 0)), 24, lr.iface_b);
  core->add_route(IpAddr(Ipv4Addr(10, 3, 0, 0)), 24, lp.iface_b);
  core->set_forwarding(true);

  HipDaemon hi(initiator, make_identity("rvs-i"));
  HipDaemon hr(rvs, make_identity("rvs-s"));
  HipDaemon hp(responder, make_identity("rvs-r"));
  hr.enable_rvs_server();

  // Responder registers with the RVS.
  hp.add_peer(hr.hit(), IpAddr(Ipv4Addr(10, 2, 0, 1)));
  hr.add_peer(hp.hit(), IpAddr(Ipv4Addr(10, 3, 0, 1)));
  hp.register_with_rvs(hr.hit());
  net.loop().run();

  // Initiator knows only the RVS locator for the responder's HIT.
  hi.add_peer(hp.hit(), IpAddr(Ipv4Addr(10, 2, 0, 1)));
  hp.add_peer(hi.hit(), IpAddr(Ipv4Addr(10, 1, 0, 1)));
  hi.initiate(hp.hit());
  net.loop().run();
  EXPECT_EQ(hi.state(hp.hit()), AssocState::kEstablished);
  EXPECT_EQ(hp.state(hi.hit()), AssocState::kEstablished);
}

}  // namespace
}  // namespace hipcloud::hip
