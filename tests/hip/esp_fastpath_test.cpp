// Pins the zero-copy single-buffer EspSa datapath to the wire bytes the
// original (allocating) implementation produced, and asserts the heap
// allocation budget of the rewritten protect()/unprotect().
//
// The golden vectors were captured from the seed implementation (one SA
// per suite, spi 0xabcd1234, enc key 32x0x11, auth key 32x0x22, payloads
// covering the CBC padding edges). Any datapath change that alters the
// wire format — IV derivation, padding, ICV truncation, header layout —
// trips these before it can silently break interop between versions.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/sha_mb.hpp"
#include "hip/esp.hpp"

// --- counting allocator (whole-binary, gated by a flag) ---------------------

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

// GCC pairs the replaced sized delete below with the *default* operator
// new when diagnosing; the replacement new here is malloc-backed, so
// free() is the matching deallocation.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace hipcloud::hip {
namespace {

using crypto::Bytes;

Bytes from_hex(const std::string& hex) {
  Bytes out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::stoi(hex.substr(2 * i, 2), nullptr, 16));
  }
  return out;
}

std::string to_hex(const Bytes& b) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(2 * b.size());
  for (const auto x : b) {
    out.push_back(kDigits[x >> 4]);
    out.push_back(kDigits[x & 0xf]);
  }
  return out;
}

std::vector<Bytes> golden_payloads() {
  std::vector<Bytes> payloads = {
      Bytes{}, crypto::to_bytes("GET /auction HTTP/1.1\r\n\r\n"),
      Bytes(15, 0x5a), Bytes(16, 0x5b), Bytes(17, 0x5c)};
  Bytes pat(100);
  for (int i = 0; i < 100; ++i) pat[i] = static_cast<std::uint8_t>(i * 7);
  payloads.push_back(pat);
  return payloads;
}

// suite index -> 6 wire packets (seq 1..6), captured from the seed.
const char* kGolden[3][6] = {
    {// kNullSha256
     "abcd12340000000100000000abcd1234000000000000000106009343e44704a3bb5813"
     "6fefbd",
     "abcd12340000000200000000abcd123400000000000000020600474554202f61756374"
     "696f6e20485454502f312e310d0a0d0a4eb4ff288405d176dd7754ee",
     "abcd12340000000300000000abcd1234000000000000000306005a5a5a5a5a5a5a5a5a"
     "5a5a5a5a5a5a0dacad3b9292aa10d1f21072",
     "abcd12340000000400000000abcd1234000000000000000406005b5b5b5b5b5b5b5b5b"
     "5b5b5b5b5b5b5b2c72cf649256079365230b29",
     "abcd12340000000500000000abcd1234000000000000000506005c5c5c5c5c5c5c5c5c"
     "5c5c5c5c5c5c5c5c2f9d11baf2d3b2324de85e1c",
     "abcd12340000000600000000abcd12340000000000000006060000070e151c232a3138"
     "3f464d545b626970777e858c939aa1a8afb6bdc4cbd2d9e0e7eef5fc030a11181f262d"
     "343b424950575e656c737a81888f969da4abb2b9c0c7ced5dce3eaf1f8ff060d141b22"
     "2930373e454c535a61686f767d848b9299a0a7aeb5bee9a426ccc640b40851c33b"},
    {// kAes128CtrSha256
     "abcd12340000000100000000abcd123400000000000000016c0c5a0eb5229524c223ba"
     "861a94",
     "abcd12340000000200000000abcd1234000000000000000206b5c19091941773768a90"
     "d8ede57ab96c7f3868abce545f9b8e2be0aec224f81443a99ca033ed",
     "abcd12340000000300000000abcd123400000000000000033e2b321dc0ba3f08cbd97b"
     "dc409f69408fded554610464f940ef79a1a8",
     "abcd12340000000400000000abcd12340000000000000004d382588044b493c2f4f180"
     "b6e5cd5442b1d57d57ddfb25d559deddb0f885",
     "abcd12340000000500000000abcd12340000000000000005ec8ebfa5f2c2ec4c7fe76c"
     "bbe83668fd41fabd14686f11569ff11f6f048547",
     "abcd12340000000600000000abcd123400000000000000061ba6e193c191b2f1670d40"
     "40e9bef5728ef8128c5ad41fa6522886f4f318c054e4b6bc5d93dea246138b2f1ea6b0"
     "1b861a680db5633fc8f9ada2313f9f270e311000ccf8b2186135fc48e311df8749ded1"
     "7f36f0ef1147d9231253f79203a5e58f7c3781e1aac8b42d90d7038bde6b83dfbf"},
    {// kAes128CbcSha256
     "abcd12340000000100000000abcd12340000000000000001e9f4d2f349bc4556e782eb"
     "c3b10cdc31b8b110a61f397044e58b5855",
     "abcd12340000000200000000abcd1234000000000000000249fc5839fc86832c5842e6"
     "378336525b5da9d89e525af60fa0ca9358dde93411d9002992a261f38834105f97",
     "abcd12340000000300000000abcd123400000000000000039637e53988bbff76c7129d"
     "e1faa2866317f43e879e215be496575219fa84768878a79c07c5874ca92052bda5",
     "abcd12340000000400000000abcd1234000000000000000440caf8893d75702017cbbc"
     "956f16c93e5b4ef2df847e1454b6b4e95e3779f0270204627164d0d1ab3b9dc480",
     "abcd12340000000500000000abcd12340000000000000005636de84ad606999236097a"
     "52aeb6bbec37cf52b468d169052e707aa1e350e22dcc89ad9aec520be0babe62bd",
     "abcd12340000000600000000abcd12340000000000000006ebb7f1e8e96e9ccde7014a"
     "dd85ff715d7ddc51e8074aa596ef34db1de62f9cda8e2f45fbeb7ad3b1f7b78b521b6d"
     "863cb6580aaed94787929fb0453e1c2751ee5e2b594eae076c92c4a8d5abd0e97bfe7f"
     "1be7df091a11d3e41ccd4ba30c64db0aad4333787f81ecab9852c061a394439c6483f0"
     "54d7ae52cbc5a082"},
};
constexpr EspSuite kSuites[3] = {EspSuite::kNullSha256,
                                 EspSuite::kAes128CtrSha256,
                                 EspSuite::kAes128CbcSha256};

TEST(EspFastPath, WireBytesMatchSeedGoldenVectors) {
  const auto payloads = golden_payloads();
  for (int s = 0; s < 3; ++s) {
    EspSa tx(0xabcd1234, kSuites[s], Bytes(32, 0x11), Bytes(32, 0x22));
    for (std::size_t p = 0; p < payloads.size(); ++p) {
      const Bytes wire = tx.protect(6, EspSa::kModeHit, payloads[p]);
      EXPECT_EQ(to_hex(wire), kGolden[s][p])
          << esp_suite_name(kSuites[s]) << " pkt " << p;
    }
  }
}

TEST(EspFastPath, GoldenVectorsUnprotectToOriginalPayloads) {
  const auto payloads = golden_payloads();
  for (int s = 0; s < 3; ++s) {
    EspSa rx(0xabcd1234, kSuites[s], Bytes(32, 0x11), Bytes(32, 0x22));
    for (std::size_t p = 0; p < payloads.size(); ++p) {
      const auto out = rx.unprotect(from_hex(kGolden[s][p]));
      ASSERT_TRUE(out.has_value())
          << esp_suite_name(kSuites[s]) << " pkt " << p;
      EXPECT_EQ(out->inner_proto, 6);
      EXPECT_EQ(out->addr_mode, EspSa::kModeHit);
      EXPECT_EQ(out->payload, payloads[p]);
      EXPECT_EQ(out->seq, p + 1);
    }
  }
}

// The batch paths must be byte-identical to the sequential golden wire —
// the multi-buffer ICV pass is an implementation detail, never a format
// change.
TEST(EspFastPath, ProtectBatchMatchesSeedGoldenVectors) {
  const auto payloads = golden_payloads();
  for (int s = 0; s < 3; ++s) {
    EspSa tx(0xabcd1234, kSuites[s], Bytes(32, 0x11), Bytes(32, 0x22));
    std::vector<EspSa::ProtectJob> jobs(payloads.size());
    for (std::size_t p = 0; p < payloads.size(); ++p) {
      jobs[p] = {6, EspSa::kModeHit,
                 crypto::Buffer(payloads[p], 26, 28)};
    }
    tx.protect_batch(jobs);
    for (std::size_t p = 0; p < payloads.size(); ++p) {
      EXPECT_EQ(to_hex(Bytes(jobs[p].buf)), kGolden[s][p])
          << esp_suite_name(kSuites[s]) << " pkt " << p;
    }
  }
}

TEST(EspFastPath, UnprotectBatchAcceptsGoldenVectors) {
  const auto payloads = golden_payloads();
  for (int s = 0; s < 3; ++s) {
    EspSa rx(0xabcd1234, kSuites[s], Bytes(32, 0x11), Bytes(32, 0x22));
    std::vector<EspSa::UnprotectJob> jobs(payloads.size());
    for (std::size_t p = 0; p < payloads.size(); ++p) {
      jobs[p].wire = crypto::Buffer(from_hex(kGolden[s][p]));
    }
    rx.unprotect_batch(jobs);
    for (std::size_t p = 0; p < payloads.size(); ++p) {
      ASSERT_TRUE(jobs[p].result.has_value())
          << esp_suite_name(kSuites[s]) << " pkt " << p;
      EXPECT_EQ(jobs[p].result->inner_proto, 6);
      EXPECT_EQ(Bytes(jobs[p].result->payload), payloads[p]);
      EXPECT_EQ(jobs[p].result->seq, p + 1);
    }
  }
}

// Batch sizes around the SIMD lane width (1, W, W+1) must all match what
// a sequential twin SA emits — partial lane groups and the spill lane are
// where a scheduler bug would hide.
TEST(EspFastPath, BatchSizesAroundLaneWidthMatchSequential) {
  // Force each multi-buffer tier in turn (caps above the hardware's
  // width clamp, so every iteration runs *some* valid tier) — on SHA-NI
  // hosts the preferred width is 1, and this keeps the SIMD lane
  // schedulers under test there too.
  for (const std::size_t cap : {std::size_t{1}, std::size_t{4},
                                std::size_t{8}}) {
    crypto::shamb::set_lane_cap_for_test(cap);
    const std::size_t width = crypto::shamb::lane_width();
    for (const auto suite : kSuites) {
      EspSa batch_tx(0xabcd1234, suite, Bytes(32, 0x11), Bytes(32, 0x22));
      EspSa seq_tx(0xabcd1234, suite, Bytes(32, 0x11), Bytes(32, 0x22));
      for (const std::size_t n : {std::size_t{1}, width, width + 1}) {
        std::vector<Bytes> payloads;
        for (std::size_t i = 0; i < n; ++i) {
          payloads.push_back(Bytes(17 * i % 200, static_cast<std::uint8_t>(i)));
        }
        std::vector<EspSa::ProtectJob> jobs(n);
        for (std::size_t i = 0; i < n; ++i) {
          jobs[i] = {6, EspSa::kModeHit, crypto::Buffer(payloads[i], 26, 28)};
        }
        batch_tx.protect_batch(jobs);
        for (std::size_t i = 0; i < n; ++i) {
          const Bytes want = seq_tx.protect(6, EspSa::kModeHit, payloads[i]);
          EXPECT_EQ(to_hex(Bytes(jobs[i].buf)), to_hex(want))
              << esp_suite_name(suite) << " cap=" << cap << " batch=" << n
              << " pkt " << i;
        }
      }
    }
  }
  crypto::shamb::set_lane_cap_for_test(0);
}

// A replayed packet in the middle of a batch must be dropped (and counted)
// without disturbing acceptance of its neighbours — the stateful replay
// window runs strictly in job order even though the ICVs were batched.
TEST(EspFastPath, ReplayWindowHitMidBatch) {
  const auto payloads = golden_payloads();
  for (int s = 0; s < 3; ++s) {
    EspSa rx(0xabcd1234, kSuites[s], Bytes(32, 0x11), Bytes(32, 0x22));
    // seq 1, 2, 2 (replay), 3, corrupted-5 — one batch.
    std::vector<EspSa::UnprotectJob> jobs(5);
    jobs[0].wire = crypto::Buffer(from_hex(kGolden[s][0]));
    jobs[1].wire = crypto::Buffer(from_hex(kGolden[s][1]));
    jobs[2].wire = crypto::Buffer(from_hex(kGolden[s][1]));
    jobs[3].wire = crypto::Buffer(from_hex(kGolden[s][2]));
    Bytes bad = from_hex(kGolden[s][4]);
    bad[bad.size() - 1] ^= 0x01;  // break the ICV
    jobs[4].wire = crypto::Buffer(bad);
    rx.unprotect_batch(jobs);

    EXPECT_TRUE(jobs[0].result.has_value());
    EXPECT_TRUE(jobs[1].result.has_value());
    EXPECT_FALSE(jobs[2].result.has_value()) << "replayed seq accepted";
    EXPECT_TRUE(jobs[3].result.has_value());
    EXPECT_FALSE(jobs[4].result.has_value()) << "corrupt ICV accepted";
    EXPECT_EQ(rx.replay_drops(), 1u);
    EXPECT_EQ(rx.auth_failures(), 1u);
  }
}

TEST(EspFastPath, ProtectMakesAtMostTwoHeapAllocations) {
  const Bytes payload(1024, 0x5a);
  for (const auto suite : kSuites) {
    EspSa tx(0xabcd1234, suite, Bytes(32, 0x11), Bytes(32, 0x22));
    // Warm up once so lazy one-time initialisation (CPU dispatch statics
    // etc.) doesn't count against the per-packet budget.
    (void)tx.protect(6, EspSa::kModeHit, payload);

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    const Bytes wire = tx.protect(6, EspSa::kModeHit, payload);
    g_count_allocs.store(false);

    EXPECT_LE(g_alloc_count.load(), 2u)
        << esp_suite_name(suite) << ": protect() exceeded the per-packet "
        << "allocation budget";
    EXPECT_FALSE(wire.empty());
  }
}

TEST(EspFastPath, UnprotectMakesAtMostTwoHeapAllocations) {
  const Bytes payload(1024, 0x5a);
  for (const auto suite : kSuites) {
    EspSa tx(0xabcd1234, suite, Bytes(32, 0x11), Bytes(32, 0x22));
    EspSa rx(0xabcd1234, suite, Bytes(32, 0x11), Bytes(32, 0x22));
    const Bytes warm = tx.protect(6, EspSa::kModeHit, payload);
    ASSERT_TRUE(rx.unprotect(warm).has_value());
    const Bytes wire = tx.protect(6, EspSa::kModeHit, payload);

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    const auto out = rx.unprotect(wire);
    g_count_allocs.store(false);

    ASSERT_TRUE(out.has_value());
    EXPECT_LE(g_alloc_count.load(), 2u)
        << esp_suite_name(suite) << ": unprotect() exceeded the per-packet "
        << "allocation budget";
  }
}

}  // namespace
}  // namespace hipcloud::hip
