#include "hip/puzzle.hpp"

#include <gtest/gtest.h>

namespace hipcloud::hip {
namespace {

const net::Ipv6Addr kHitI = net::Ipv6Addr::parse("2001:10::1");
const net::Ipv6Addr kHitR = net::Ipv6Addr::parse("2001:10::2");

TEST(Puzzle, ZeroDifficultyIsFree) {
  Puzzle puzzle{0, 12345};
  const auto solution = puzzle.solve(kHitI, kHitR);
  EXPECT_EQ(solution.attempts, 1u);
  EXPECT_TRUE(puzzle.verify(kHitI, kHitR, solution.j));
  EXPECT_TRUE(puzzle.verify(kHitI, kHitR, 999));  // anything passes at K=0
}

class PuzzleDifficulty : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(PuzzleDifficulty, SolutionVerifies) {
  Puzzle puzzle{GetParam(), 0xdeadbeefULL};
  const auto solution = puzzle.solve(kHitI, kHitR);
  EXPECT_TRUE(puzzle.verify(kHitI, kHitR, solution.j));
  EXPECT_GE(solution.attempts, 1u);
}

TEST_P(PuzzleDifficulty, SolutionIsHitPairSpecific) {
  // A solution computed for one HIT pair must not generally transfer to
  // another pair (K >= 8 makes accidental transfer unlikely).
  if (GetParam() < 8) GTEST_SKIP();
  Puzzle puzzle{GetParam(), 77};
  const auto solution = puzzle.solve(kHitI, kHitR);
  const net::Ipv6Addr other = net::Ipv6Addr::parse("2001:10::3");
  EXPECT_FALSE(puzzle.verify(other, kHitR, solution.j));
}

INSTANTIATE_TEST_SUITE_P(Difficulties, PuzzleDifficulty,
                         ::testing::Values(1, 4, 8, 12));

TEST(Puzzle, AttemptsScaleWithDifficulty) {
  // Average attempts over several I values should grow ~2^K.
  double avg4 = 0, avg10 = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    avg4 += static_cast<double>(Puzzle{4, i * 31 + 1}.solve(kHitI, kHitR).attempts);
    avg10 +=
        static_cast<double>(Puzzle{10, i * 31 + 1}.solve(kHitI, kHitR).attempts);
  }
  avg4 /= 8;
  avg10 /= 8;
  EXPECT_GT(avg10, avg4 * 8);  // 2^6 = 64x expected; 8x is a safe bound
  const Puzzle p10{10, 0};
  EXPECT_DOUBLE_EQ(p10.expected_attempts(), 1024.0);
}

TEST(Puzzle, WrongSolutionRejected) {
  Puzzle puzzle{12, 42};
  const auto solution = puzzle.solve(kHitI, kHitR);
  EXPECT_FALSE(puzzle.verify(kHitI, kHitR, solution.j + 1));
}

TEST(Puzzle, DifferentIGivesDifferentSolutions) {
  Puzzle p1{10, 1}, p2{10, 2};
  const auto s1 = p1.solve(kHitI, kHitR);
  // s1 solving p2 would be a 1/1024 coincidence.
  EXPECT_FALSE(p2.verify(kHitI, kHitR, s1.j) &&
               p1.solve(kHitI, kHitR).j == p2.solve(kHitI, kHitR).j);
}

}  // namespace
}  // namespace hipcloud::hip
