// Failure-recovery behaviour: ESP sequence exhaustion (RFC 4303 no-wrap),
// proactive/forced SA rekey, dead-peer detection, and automatic
// readdressing when the host's locator set changes under it (the
// migration case of the paper, without the orchestrator calling
// move_to() by hand).
#include <gtest/gtest.h>

#include "hip/daemon.hpp"
#include "net/udp.hpp"

namespace hipcloud::hip {
namespace {

using crypto::Bytes;
using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;
using net::LinkConfig;

HostIdentity make_identity(const std::string& name) {
  crypto::HmacDrbg drbg(crypto::to_bytes("id:" + name));
  return HostIdentity::generate(drbg, HiAlgorithm::kRsa, 1024);
}

/// Same two-hosts-across-a-router fixture as daemon_test.cpp.
struct HipPair {
  net::Network net{42};
  net::Node* a;
  net::Node* r;
  net::Node* b;
  std::unique_ptr<HipDaemon> ha;
  std::unique_ptr<HipDaemon> hb;

  explicit HipPair(HipConfig cfg_a = {}, HipConfig cfg_b = {},
                   LinkConfig link = {}) {
    a = net.add_node("host-a", 3e9);
    r = net.add_node("router");
    b = net.add_node("host-b", 3e9);
    const auto la = net.connect(a, r, link);
    const auto lb = net.connect(r, b, link);
    a->add_address(la.iface_a, Ipv4Addr(10, 0, 1, 1));
    r->add_address(la.iface_b, Ipv4Addr(10, 0, 1, 254));
    r->add_address(lb.iface_a, Ipv4Addr(10, 0, 2, 254));
    b->add_address(lb.iface_b, Ipv4Addr(10, 0, 2, 1));
    a->set_default_route(la.iface_a);
    b->set_default_route(lb.iface_b);
    r->add_route(IpAddr(Ipv4Addr(10, 0, 1, 0)), 24, la.iface_b);
    r->add_route(IpAddr(Ipv4Addr(10, 0, 2, 0)), 24, lb.iface_a);
    r->set_forwarding(true);

    ha = std::make_unique<HipDaemon>(a, make_identity("a"), cfg_a);
    hb = std::make_unique<HipDaemon>(b, make_identity("b"), cfg_b);
    ha->add_peer(hb->hit(), IpAddr(Ipv4Addr(10, 0, 2, 1)));
    hb->add_peer(ha->hit(), IpAddr(Ipv4Addr(10, 0, 1, 1)));
  }

  void establish() {
    ha->initiate(hb->hit());
    net.loop().run(net.loop().now() + sim::kSecond);
    ASSERT_EQ(ha->state(hb->hit()), AssocState::kEstablished);
    ASSERT_EQ(hb->state(ha->hit()), AssocState::kEstablished);
  }
};

// --- satellite (a): the SA must refuse to wrap, not blackhole ------------

TEST(EspSeqExhaustion, ProtectReportsExhaustionInsteadOfWrapping) {
  EspSa tx(0x1000, EspSuite::kAes128CtrSha256, Bytes(32, 0x11),
           Bytes(32, 0x22));
  EspSa rx(0x1000, EspSuite::kAes128CtrSha256, Bytes(32, 0x11),
           Bytes(32, 0x22));
  const Bytes payload = crypto::to_bytes("last packets before rollover");

  tx.seek_seq(0xFFFFFFFE);
  EXPECT_EQ(tx.remaining_seq(), 2u);

  // The final two sequence numbers still work end to end.
  auto out1 = rx.unprotect(tx.protect(6, EspSa::kModeHit, payload));
  ASSERT_TRUE(out1.has_value());
  EXPECT_EQ(out1->seq, 0xFFFFFFFEu);
  auto out2 = rx.unprotect(tx.protect(6, EspSa::kModeHit, payload));
  ASSERT_TRUE(out2.has_value());
  EXPECT_EQ(out2->seq, 0xFFFFFFFFu);
  EXPECT_EQ(tx.remaining_seq(), 0u);
  EXPECT_FALSE(tx.exhausted());  // spent, but not yet asked again

  // Regression: the pre-fix code wrapped to seq 0 here and kept emitting
  // packets the peer's anti-replay window rejects forever. Now the SA
  // reports exhaustion and emits nothing.
  const Bytes wire = tx.protect(6, EspSa::kModeHit, payload);
  EXPECT_TRUE(wire.empty());
  EXPECT_TRUE(tx.exhausted());
  // ...and stays exhausted on further attempts.
  EXPECT_TRUE(tx.protect(6, EspSa::kModeHit, payload).empty());
}

// --- tentpole: proactive rekey before exhaustion --------------------------

TEST(HipRecovery, ProactiveRekeyRollsSasBeforeExhaustion) {
  HipPair topo;
  net::UdpStack ua(topo.a), ub(topo.b);
  int received = 0;
  ub.bind(7777, [&](const Endpoint&, const IpAddr&, Bytes) { ++received; });
  topo.establish();

  // Pretend the outbound SA has nearly spent its 32-bit space: the next
  // data packet must trip the proactive-rekey threshold.
  ASSERT_TRUE(topo.ha->seek_esp_seq(topo.hb->hit(), 0xFFFFFF00u));
  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, Bytes(10, 1));
  topo.net.loop().run(topo.net.loop().now() + 5 * sim::kSecond);

  EXPECT_EQ(received, 1);  // the triggering packet itself is not lost
  EXPECT_EQ(topo.ha->stats().rekeys_initiated, 1u);
  EXPECT_EQ(topo.ha->stats().rekeys_completed, 1u);
  EXPECT_EQ(topo.ha->stats().sa_exhausted_drops, 0u);

  // Both directions keep flowing on the fresh SAs.
  int back = 0;
  ua.bind(8888, [&](const Endpoint&, const IpAddr&, Bytes) { ++back; });
  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, Bytes(10, 2));
  ub.send(6666, Endpoint{IpAddr(topo.ha->hit()), 8888}, Bytes(10, 3));
  topo.net.loop().run(topo.net.loop().now() + 5 * sim::kSecond);
  EXPECT_EQ(received, 2);
  EXPECT_EQ(back, 1);
  EXPECT_EQ(topo.ha->state(topo.hb->hit()), AssocState::kEstablished);
}

TEST(HipRecovery, ExhaustionForcesRekeyEvenWhenProactiveDisabled) {
  HipConfig cfg;
  cfg.esp_rekey_threshold = 0;  // no proactive rollover
  HipPair topo(cfg, cfg);
  net::UdpStack ua(topo.a), ub(topo.b);
  int received = 0;
  ub.bind(7777, [&](const Endpoint&, const IpAddr&, Bytes) { ++received; });
  topo.establish();

  // Spend the final sequence number, then hit the exhausted SA.
  ASSERT_TRUE(topo.ha->seek_esp_seq(topo.hb->hit(), 0xFFFFFFFFu));
  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, Bytes(10, 1));
  topo.net.loop().run(topo.net.loop().now() + sim::kSecond);
  EXPECT_EQ(received, 1);

  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, Bytes(10, 2));
  topo.net.loop().run(topo.net.loop().now() + 5 * sim::kSecond);
  // That packet was dropped (SA spent, rekey kicked off)...
  EXPECT_EQ(topo.ha->stats().sa_exhausted_drops, 1u);
  EXPECT_EQ(topo.ha->stats().rekeys_completed, 1u);
  // ...but the association healed itself without manual intervention.
  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, Bytes(10, 3));
  topo.net.loop().run(topo.net.loop().now() + sim::kSecond);
  EXPECT_EQ(received, 2);
}

// --- tentpole: dead-peer detection + lazy re-establishment ----------------

TEST(HipRecovery, KeepaliveDeclaresDeadPeerAndReBexRecovers) {
  HipConfig cfg_a;
  cfg_a.keepalive_interval = sim::kSecond;
  cfg_a.keepalive_max_misses = 2;
  HipPair topo(cfg_a, HipConfig{});
  net::UdpStack ua(topo.a), ub(topo.b);
  int received = 0;
  ub.bind(7777, [&](const Endpoint&, const IpAddr&, Bytes) { ++received; });
  topo.establish();

  // Peer crashes: every probe goes unanswered.
  topo.b->set_down(true);
  topo.net.loop().run(topo.net.loop().now() + 20 * sim::kSecond);
  EXPECT_GT(topo.ha->stats().keepalives_sent, 0u);
  EXPECT_EQ(topo.ha->stats().peer_failures, 1u);
  EXPECT_EQ(topo.ha->state(topo.hb->hit()), AssocState::kUnassociated);

  // Peer restarts; the next data packet lazily re-runs the BEX and the
  // responder replaces its stale SAs (re-BEX detection in handle_i2).
  topo.b->set_down(false);
  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, Bytes(10, 1));
  topo.net.loop().run(topo.net.loop().now() + 5 * sim::kSecond);
  EXPECT_EQ(topo.ha->state(topo.hb->hit()), AssocState::kEstablished);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(topo.ha->stats().bex_completed, 2u);
}

// --- tentpole: locator-change detection drives the UPDATE exchange -------

TEST(HipRecovery, AddressChangeTriggersReaddressingWithoutManualMoveTo) {
  HipPair topo;
  net::UdpStack ua(topo.a), ub(topo.b);
  int received = 0;
  ub.bind(7777, [&](const Endpoint&, const IpAddr&, Bytes) { ++received; });
  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, Bytes(10, 1));
  topo.net.loop().run();
  ASSERT_EQ(received, 1);

  std::optional<IpAddr> announced;
  topo.ha->on_locator_change([&](const IpAddr& l) { announced = l; });

  // The VM is readdressed (as after a migration): a new locator appears
  // on the interface. Nobody calls move_to() — the daemon notices.
  topo.r->add_route(IpAddr(Ipv4Addr(10, 0, 9, 7)), 32, 0);
  topo.a->add_address(0, Ipv4Addr(10, 0, 9, 7));
  topo.net.loop().run();

  ASSERT_TRUE(announced.has_value());
  EXPECT_EQ(*announced, IpAddr(Ipv4Addr(10, 0, 9, 7)));
  EXPECT_GT(topo.hb->stats().updates_processed, 0u);

  // The old address disappears entirely; the peer must already be
  // talking to the new locator or this packet dies.
  topo.a->remove_address(0, IpAddr(Ipv4Addr(10, 0, 1, 1)));
  ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, Bytes(10, 2));
  topo.net.loop().run();
  EXPECT_EQ(received, 2);
}

// --- satellite (b): full pending queue accounts drops ---------------------

TEST(HipRecovery, PendingOverflowIsCountedNotSilent) {
  HipConfig cfg;
  cfg.bex_max_retries = 0;
  HipPair topo(cfg, HipConfig{});
  // Point A at a locator nobody answers so the BEX hangs and traffic
  // piles up in the pre-BEX pending queue.
  topo.ha->add_peer(topo.hb->hit(), IpAddr(Ipv4Addr(10, 0, 2, 77)));
  net::UdpStack ua(topo.a);
  const std::size_t kFlood = 100;  // far above any sane pending cap
  for (std::size_t i = 0; i < kFlood; ++i) {
    ua.send(5555, Endpoint{IpAddr(topo.hb->hit()), 7777}, Bytes(10, 1));
  }
  topo.net.loop().run(topo.net.loop().now() + 10 * sim::kSecond);
  const auto& st = topo.ha->stats();
  EXPECT_GT(st.pending_dropped, 0u);
  // Queue-at-failure packets are charged to pending_failed when the BEX
  // gives up.
  EXPECT_GT(st.pending_failed, 0u);
  EXPECT_EQ(st.pending_dropped + st.pending_failed, kFlood);
}

}  // namespace
}  // namespace hipcloud::hip
