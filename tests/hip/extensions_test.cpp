// Tests for the paper's future-work extensions (dynamic DNS on mobility)
// plus parameterized sweeps across the HIP configuration space.

#include <gtest/gtest.h>

#include "cloud/cloud.hpp"
#include "hip/dns_updater.hpp"
#include "net/udp.hpp"

namespace hipcloud::hip {
namespace {

using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

HostIdentity make_identity(const std::string& name, HiAlgorithm algo,
                           std::size_t bits = 1024) {
  crypto::HmacDrbg drbg(crypto::to_bytes("ext:" + name));
  return HostIdentity::generate(drbg, algo, bits);
}

TEST(DnsUpdater, PublishesHipAndARecords) {
  net::Network net(61);
  cloud::Cloud ec2(net, cloud::ProviderProfile::ec2(), 1);
  ec2.add_host();
  auto* vm = ec2.launch("svc", cloud::InstanceType::small());
  auto* dns_vm = ec2.launch("dns", cloud::InstanceType::small());
  HipDaemon daemon(vm->node(), make_identity("svc", HiAlgorithm::kRsa));
  net::UdpStack u_dns(dns_vm->node());
  net::DnsServer dns(dns_vm->node(), &u_dns);
  DnsUpdater updater(&daemon, &dns, "svc.cloud");

  net::UdpStack u_vm(vm->node());
  net::DnsResolver resolver(vm->node(), &u_vm,
                            Endpoint{IpAddr(dns_vm->private_ip()),
                                     net::kDnsPort});
  std::optional<Ipv4Addr> a;
  std::optional<net::Ipv6Addr> hit;
  resolver.query("svc.cloud", net::DnsType::kA,
                 [&](std::vector<net::DnsRecord> records) {
                   if (!records.empty()) a = records[0].as_a();
                 });
  resolver.query("svc.cloud", net::DnsType::kHip,
                 [&](std::vector<net::DnsRecord> records) {
                   if (!records.empty()) hit = records[0].hip_hit();
                 });
  net.loop().run();
  EXPECT_EQ(a, std::optional<Ipv4Addr>(vm->private_ip()));
  EXPECT_EQ(hit, std::optional<net::Ipv6Addr>(daemon.hit()));
}

TEST(DnsUpdater, MigrationRefreshesTheARecord) {
  net::Network net(63);
  cloud::Cloud ec2(net, cloud::ProviderProfile::ec2(), 1);
  auto* h0 = ec2.add_host();
  auto* h1 = ec2.add_host();
  auto* vm = ec2.launch("svc", cloud::InstanceType::small(), "t", h0);
  auto* dns_vm = ec2.launch("dns", cloud::InstanceType::small(), "t", h0);
  HipDaemon daemon(vm->node(), make_identity("svc2", HiAlgorithm::kRsa));
  net::UdpStack u_dns(dns_vm->node());
  net::DnsServer dns(dns_vm->node(), &u_dns);
  DnsUpdater updater(&daemon, &dns, "svc.cloud");

  Ipv4Addr new_ip;
  ec2.migrate(vm, h1, [&](const cloud::Cloud::MigrationReport& report) {
    new_ip = report.new_ip;
    daemon.move_to(IpAddr(report.new_ip));
  });
  net.loop().run();

  // Resolve via the server's own stack (one UdpStack per node; a second
  // would displace the first's protocol registration).
  net::DnsResolver resolver(dns_vm->node(), &u_dns,
                            Endpoint{IpAddr(dns_vm->private_ip()),
                                     net::kDnsPort});
  std::optional<Ipv4Addr> resolved;
  resolver.query("svc.cloud", net::DnsType::kA,
                 [&](std::vector<net::DnsRecord> records) {
                   ASSERT_EQ(records.size(), 1u);  // old record replaced
                   resolved = records[0].as_a();
                 });
  net.loop().run();
  EXPECT_EQ(resolved, std::optional<Ipv4Addr>(new_ip));
}

/// Full HIP configuration sweep: every combination of identity algorithm,
/// DH group and ESP suite must complete a BEX and carry data.
struct HipSweepParam {
  HiAlgorithm algo;
  crypto::DhGroup group;
  EspSuite suite;
};

class HipConfigSweep : public ::testing::TestWithParam<HipSweepParam> {};

TEST_P(HipConfigSweep, BexAndDataWork) {
  const auto p = GetParam();
  net::Network net(71);
  auto* a = net.add_node("a", 3e9);
  auto* b = net.add_node("b", 3e9);
  const auto link = net.connect(a, b, {});
  a->add_address(link.iface_a, Ipv4Addr(10, 0, 0, 1));
  b->add_address(link.iface_b, Ipv4Addr(10, 0, 0, 2));
  a->set_default_route(link.iface_a);
  b->set_default_route(link.iface_b);
  HipConfig cfg;
  cfg.dh_group = p.group;
  cfg.esp_suite = p.suite;
  cfg.puzzle_difficulty = 4;
  HipDaemon ha(a, make_identity("sweep-a", p.algo), cfg);
  HipDaemon hb(b, make_identity("sweep-b", p.algo), cfg);
  ha.add_peer(hb.hit(), IpAddr(Ipv4Addr(10, 0, 0, 2)));
  hb.add_peer(ha.hit(), IpAddr(Ipv4Addr(10, 0, 0, 1)));

  net::UdpStack ua(a), ub(b);
  crypto::Bytes got;
  ub.bind(7, [&](const Endpoint&, const IpAddr&, crypto::Bytes data) {
    got = std::move(data);
  });
  ua.send(9, Endpoint{IpAddr(hb.hit()), 7}, crypto::to_bytes("sweep"));
  net.loop().run();
  EXPECT_EQ(ha.state(hb.hit()), AssocState::kEstablished);
  EXPECT_EQ(got, crypto::to_bytes("sweep"));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, HipConfigSweep,
    ::testing::Values(
        HipSweepParam{HiAlgorithm::kRsa, crypto::DhGroup::kModp1536,
                      EspSuite::kAes128CtrSha256},
        HipSweepParam{HiAlgorithm::kRsa, crypto::DhGroup::kModp2048,
                      EspSuite::kAes128CbcSha256},
        HipSweepParam{HiAlgorithm::kRsa, crypto::DhGroup::kModp1536,
                      EspSuite::kNullSha256},
        HipSweepParam{HiAlgorithm::kEcdsa, crypto::DhGroup::kModp1536,
                      EspSuite::kAes128CtrSha256},
        HipSweepParam{HiAlgorithm::kEcdsa, crypto::DhGroup::kModp2048,
                      EspSuite::kNullSha256},
        HipSweepParam{HiAlgorithm::kEcdsa, crypto::DhGroup::kModp3072,
                      EspSuite::kAes128CbcSha256}),
    [](const auto& name_info) {
      const auto& p = name_info.param;
      std::string name =
          p.algo == HiAlgorithm::kRsa ? "Rsa" : "Ecdsa";
      name += "Modp" + std::to_string(p.group == crypto::DhGroup::kModp1536
                                          ? 1536
                                          : p.group ==
                                                    crypto::DhGroup::kModp2048
                                                ? 2048
                                                : 3072);
      name += p.suite == EspSuite::kNullSha256       ? "Null"
              : p.suite == EspSuite::kAes128CtrSha256 ? "Ctr"
                                                      : "Cbc";
      return name;
    });

}  // namespace
}  // namespace hipcloud::hip
