// Audit-build regression suite (hipcheck): deliberately drives the
// protocol-invariant regressions the HIPCLOUD_AUDIT layer exists to
// catch and asserts the audits actually trip. In normal builds the same
// operations are silent corruption — which is the point — so every test
// here skips unless HIPCLOUD_AUDIT_ENABLED is compiled in. Registered
// under the `audit` CTest label; scripts/check.sh --audit runs the whole
// suite in an audit-enabled build.

#include <gtest/gtest.h>

#include "hip/daemon.hpp"
#include "hip/esp.hpp"
#include "hip/keymat.hpp"
#include "net/node.hpp"
#include "sim/check.hpp"

namespace hipcloud::hip {
namespace {

#ifdef HIPCLOUD_AUDIT_ENABLED
constexpr bool kAuditBuild = true;
#else
constexpr bool kAuditBuild = false;
#endif

#define SKIP_UNLESS_AUDIT()                                              \
  if (!kAuditBuild) {                                                    \
    GTEST_SKIP() << "audits compiled out (build with -DHIPCLOUD_AUDIT=ON)"; \
  }

HostIdentity make_identity(const std::string& name) {
  crypto::HmacDrbg drbg(crypto::to_bytes("id:" + name));
  return HostIdentity::generate(drbg, HiAlgorithm::kRsa, 1024);
}

struct OneHost {
  net::Network net{7};
  net::Node* node = net.add_node("host", 3e9);
  HipDaemon daemon{node, make_identity("host")};
  net::Ipv6Addr peer = make_identity("peer").hit();
};

TEST(AuditTrip, IllegalAssociationTransitionThrows) {
  SKIP_UNLESS_AUDIT();
  OneHost h;
  // kUnassociated -> kI2Sent skips the I1/R1 half of the BEX ladder:
  // never legal for initiator or responder.
  EXPECT_THROW(h.daemon.debug_force_state(h.peer, AssocState::kI2Sent),
               sim::CheckFailure);
}

TEST(AuditTrip, EstablishedWithoutSasThrows) {
  SKIP_UNLESS_AUDIT();
  OneHost h;
  // The edge kUnassociated -> kEstablished is legal (responder at I2),
  // but the structural audit must then reject an "established"
  // association that has no SAs installed.
  EXPECT_THROW(h.daemon.debug_force_state(h.peer, AssocState::kEstablished),
               sim::CheckFailure);
}

TEST(AuditTrip, LegalTransitionDoesNotThrow) {
  SKIP_UNLESS_AUDIT();
  OneHost h;
  EXPECT_NO_THROW(h.daemon.debug_force_state(h.peer, AssocState::kI1Sent));
  EXPECT_NO_THROW(h.daemon.debug_force_state(h.peer, AssocState::kFailed));
  EXPECT_NO_THROW(h.daemon.debug_force_state(h.peer, AssocState::kI1Sent));
}

TEST(AuditTrip, TransitionTableMatchesBexLadder) {
  // Pure predicate — verifiable in every build. Spot-check the ladder,
  // the responder jump, and a few forbidden edges.
  using S = AssocState;
  EXPECT_TRUE(legal_assoc_transition(S::kUnassociated, S::kI1Sent));
  EXPECT_TRUE(legal_assoc_transition(S::kUnassociated, S::kEstablished));
  EXPECT_TRUE(legal_assoc_transition(S::kI1Sent, S::kI2Sent));
  // Simultaneous initiation: the peer's I2 lands while our I1 is still
  // outstanding and we establish as responder.
  EXPECT_TRUE(legal_assoc_transition(S::kI1Sent, S::kEstablished));
  EXPECT_TRUE(legal_assoc_transition(S::kI2Sent, S::kEstablished));
  EXPECT_TRUE(legal_assoc_transition(S::kEstablished, S::kClosing));
  EXPECT_TRUE(legal_assoc_transition(S::kFailed, S::kI1Sent));
  EXPECT_FALSE(legal_assoc_transition(S::kUnassociated, S::kI2Sent));
  EXPECT_FALSE(legal_assoc_transition(S::kUnassociated, S::kClosing));
  EXPECT_FALSE(legal_assoc_transition(S::kEstablished, S::kI2Sent));
  EXPECT_FALSE(legal_assoc_transition(S::kClosing, S::kEstablished));
  EXPECT_FALSE(legal_assoc_transition(S::kFailed, S::kEstablished));
}

struct SaPair {
  crypto::Bytes key = crypto::Bytes(16, 0x42);
  EspSa out{0x1001, EspSuite::kAes128CtrSha256, key, key};
  EspSa in{0x1001, EspSuite::kAes128CtrSha256, key, key};
};

TEST(AuditTrip, EspReplayWindowRegressionThrows) {
  SKIP_UNLESS_AUDIT();
  SaPair sa;
  // Deliver a healthy run of packets so the inbound window advances.
  for (int i = 0; i < 16; ++i) {
    const auto wire =
        sa.out.protect(42, EspSa::kModeHit, crypto::Bytes(64, 0x11));
    ASSERT_TRUE(sa.in.unprotect(wire).has_value());
  }
  // Rewind the high-water mark behind the shadow's back — the class of
  // replay-window regression (a span of old sequence numbers becomes
  // acceptable again) the audit exists to catch.
  sa.in.debug_rewind_replay_window(8);
  const auto wire =
      sa.out.protect(42, EspSa::kModeHit, crypto::Bytes(64, 0x22));
  EXPECT_THROW(sa.in.unprotect(wire), sim::CheckFailure);
}

TEST(AuditTrip, EspHealthyTrafficDoesNotTrip) {
  SKIP_UNLESS_AUDIT();
  SaPair sa;
  for (int i = 0; i < 64; ++i) {
    const auto wire =
        sa.out.protect(42, EspSa::kModeHit, crypto::Bytes(32, 0x33));
    EXPECT_TRUE(sa.in.unprotect(wire).has_value());
  }
}

}  // namespace
}  // namespace hipcloud::hip
