#include "cloud/shard_fabric.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "net/node.hpp"
#include "sim/time.hpp"

namespace hipcloud::cloud {
namespace {

TEST(ShardAssignment, PureFunctionOfTopology) {
  EXPECT_EQ(shard_for_rack(0, 4), 0u);
  EXPECT_EQ(shard_for_rack(3, 4), 3u);
  EXPECT_EQ(shard_for_rack(5, 4), 1u);  // folds round-robin
  EXPECT_EQ(shard_for_rack(7, 1), 0u);
  EXPECT_EQ(shard_for_hypervisor(2, 1, 2, 4), 2u);
}

struct FabricRun {
  std::uint64_t hash;
  std::uint64_t fired;
  std::vector<int> received;  // per rack
};

/// Build a 4-rack fabric, have every rack's VM fire UDP probes at the
/// VMs two neighbouring racks over the cross-shard gateway mesh, and
/// count receipts per rack. Counters are written only by the owning
/// rack's shard thread, so the test is exact under TSan too.
FabricRun run_fabric(unsigned workers) {
  FabricConfig cfg;
  cfg.racks = 4;
  cfg.hosts_per_rack = 1;
  cfg.vms_per_host = 1;
  ShardedFabric fabric(cfg);

  std::vector<int> received(cfg.racks, 0);
  std::vector<net::IpAddr> vm_ip;
  for (std::size_t r = 0; r < cfg.racks; ++r) {
    Vm* vm = fabric.rack_vms(r)[0].get();
    vm_ip.emplace_back(vm->private_ip());
    vm->node()->register_protocol(
        net::IpProto::kUdp,
        [&received, r](net::Packet&&) { ++received[r]; });
  }
  for (std::size_t r = 0; r < cfg.racks; ++r) {
    Vm* vm = fabric.rack_vms(r)[0].get();
    for (std::size_t hop = 1; hop <= 2; ++hop) {
      const std::size_t peer = (r + hop) % cfg.racks;
      const sim::Time at = sim::from_micros(10 + 7 * static_cast<int>(r) +
                                            3 * static_cast<int>(hop));
      fabric.world().shard(r).loop().schedule_at(at, [&, vm, r, peer] {
        net::Packet pkt;
        pkt.src = vm_ip[r];
        pkt.dst = vm_ip[peer];
        pkt.proto = net::IpProto::kUdp;
        pkt.payload = fabric.world().shard(r).buffer_pool().make(128);
        pkt.stamp_l3_overhead();
        vm->node()->send(std::move(pkt));
      });
    }
  }
  fabric.run(sim::from_millis(50), workers);
  return FabricRun{fabric.world_hash(), fabric.merged_perf().events_fired,
                   std::move(received)};
}

TEST(ShardedFabric, CrossRackTrafficArrivesAndHashIsWorkerInvariant) {
  const FabricRun base = run_fabric(1);
  // Every rack is probed by its two upstream neighbours.
  EXPECT_EQ(base.received, (std::vector<int>{2, 2, 2, 2}));
  for (const unsigned workers : {2u, 4u}) {
    const FabricRun r = run_fabric(workers);
    EXPECT_EQ(r.hash, base.hash) << "workers=" << workers;
    EXPECT_EQ(r.fired, base.fired) << "workers=" << workers;
    EXPECT_EQ(r.received, base.received) << "workers=" << workers;
  }
}

TEST(ShardedFabric, HeterogeneousPodsRegisterSlowInterPodSeams) {
  FabricConfig cfg;
  cfg.racks = 4;
  cfg.hosts_per_rack = 1;
  cfg.vms_per_host = 1;
  cfg.racks_per_pod = 2;  // racks {0,1} and {2,3}
  cfg.cross_pod.latency = sim::from_millis(5);
  ShardedFabric fabric(cfg);
  EXPECT_EQ(fabric.pod_of(0), 0u);
  EXPECT_EQ(fabric.pod_of(3), 1u);
  auto& coord = fabric.world().coordinator();
  // Intra-pod seams carry the fast cross_rack lookahead, inter-pod the
  // slow cross_pod one — the heterogeneity the adaptive horizon exploits.
  EXPECT_EQ(coord.pair_lookahead(0, 1), cfg.cross_rack.latency);
  EXPECT_EQ(coord.pair_lookahead(2, 3), cfg.cross_rack.latency);
  EXPECT_EQ(coord.pair_lookahead(0, 2), cfg.cross_pod.latency);
  EXPECT_EQ(coord.pair_lookahead(1, 3), cfg.cross_pod.latency);
  // The global view still reports the smallest seam in the world.
  EXPECT_EQ(coord.lookahead(), cfg.cross_rack.latency);
}

TEST(ShardedFabric, RackTopologyAndAddressing) {
  FabricConfig cfg;
  cfg.racks = 3;
  cfg.hosts_per_rack = 2;
  cfg.vms_per_host = 2;
  ShardedFabric fabric(cfg);
  ASSERT_EQ(fabric.racks(), 3u);
  EXPECT_EQ(fabric.world().shard_count(), 3u);
  // Cross-rack mesh latency bounds the lookahead.
  EXPECT_EQ(fabric.world().coordinator().lookahead(), cfg.cross_rack.latency);
  for (std::size_t r = 0; r < cfg.racks; ++r) {
    ASSERT_EQ(fabric.rack_vms(r).size(), 4u);
    for (const auto& vm : fabric.rack_vms(r)) {
      // Rack r owns 10.r.0.0/16 (cloud index = rack id).
      const std::uint32_t ip = vm->private_ip().value();
      EXPECT_EQ(ip >> 24, 10u);
      EXPECT_EQ((ip >> 16) & 0xffu, static_cast<std::uint32_t>(r));
    }
  }
}

}  // namespace
}  // namespace hipcloud::cloud
