#include "cloud/cloud.hpp"

#include <gtest/gtest.h>

#include "cloud/vlan.hpp"
#include "net/udp.hpp"

namespace hipcloud::cloud {
namespace {

using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

TEST(InstanceType, EcuToCycles) {
  EXPECT_DOUBLE_EQ(InstanceType::large().cycles_per_second(), 4.0 * 1.2e9);
  EXPECT_LT(InstanceType::micro().cycles_per_second(),
            InstanceType::small().cycles_per_second());
  EXPECT_GT(InstanceType::micro().burst_compute_units,
            InstanceType::micro().compute_units);
}

TEST(Cloud, LaunchAssignsAddressesPerHost) {
  net::Network net(1);
  Cloud ec2(net, ProviderProfile::ec2(), 1);
  auto* h0 = ec2.add_host();
  auto* h1 = ec2.add_host();
  auto* vm0 = ec2.launch("a", InstanceType::small(), "t", h0);
  auto* vm1 = ec2.launch("b", InstanceType::small(), "t", h0);
  auto* vm2 = ec2.launch("c", InstanceType::small(), "t", h1);
  EXPECT_EQ(vm0->private_ip(), Ipv4Addr(10, 1, 0, 10));
  EXPECT_EQ(vm1->private_ip(), Ipv4Addr(10, 1, 0, 11));
  EXPECT_EQ(vm2->private_ip(), Ipv4Addr(10, 1, 1, 10));
  EXPECT_EQ(h0->vm_count(), 2);
  EXPECT_EQ(h1->vm_count(), 1);
}

TEST(Cloud, RoundRobinPlacement) {
  net::Network net(1);
  Cloud ec2(net, ProviderProfile::ec2(), 1);
  ec2.add_host();
  ec2.add_host();
  ec2.add_host();
  std::vector<int> hosts;
  for (int i = 0; i < 6; ++i) {
    hosts.push_back(
        ec2.launch("vm" + std::to_string(i), InstanceType::small())
            ->host()
            ->index());
  }
  EXPECT_EQ(hosts, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(Cloud, LaunchWithoutHostsThrows) {
  net::Network net(1);
  Cloud ec2(net, ProviderProfile::ec2(), 1);
  EXPECT_THROW(ec2.launch("vm", InstanceType::small()), std::runtime_error);
}

TEST(Cloud, IntraCloudConnectivity) {
  net::Network net(1);
  Cloud ec2(net, ProviderProfile::ec2(), 1);
  ec2.add_host();
  ec2.add_host();
  auto* a = ec2.launch("a", InstanceType::small());
  auto* b = ec2.launch("b", InstanceType::small());  // different host
  net::UdpStack ua(a->node()), ub(b->node());
  crypto::Bytes got;
  ub.bind(7, [&](const Endpoint&, const IpAddr&, crypto::Bytes data) {
    got = std::move(data);
  });
  ua.send(9, Endpoint{IpAddr(b->private_ip()), 7},
          crypto::to_bytes("cross-host"));
  net.loop().run();
  EXPECT_EQ(got, crypto::to_bytes("cross-host"));
}

TEST(Cloud, ExternalConnectivityThroughGateway) {
  net::Network net(1);
  Cloud ec2(net, ProviderProfile::ec2(), 1);
  ec2.add_host();
  auto* vm = ec2.launch("vm", InstanceType::small());
  auto* outside = net.add_node("outside");
  const auto link = ec2.attach_external(outside, {});
  (void)link;
  // Address the external node (its only interface is the gateway link).
  outside->add_address(0, Ipv4Addr(8, 8, 8, 8));
  net::UdpStack uv(vm->node()), uo(outside);
  Endpoint seen{};
  uo.bind(53, [&](const Endpoint& from, const IpAddr&, crypto::Bytes) {
    seen = from;
  });
  uv.send(9, Endpoint{IpAddr(Ipv4Addr(8, 8, 8, 8)), 53}, crypto::Bytes(4, 0));
  net.loop().run();
  // The VM's private address is visible (no NAT at the gateway).
  EXPECT_EQ(seen.addr, IpAddr(vm->private_ip()));
}

TEST(Cloud, TwoCloudsInterconnect) {
  net::Network net(2);
  Cloud priv(net, ProviderProfile::opennebula(), 1);
  Cloud pub(net, ProviderProfile::ec2(), 2);
  priv.add_host();
  pub.add_host();
  auto* a = priv.launch("a", InstanceType::small());
  auto* b = pub.launch("b", InstanceType::small());
  auto* wan = net.add_node("wan");
  wan->set_forwarding(true);
  priv.attach_external(wan, {});
  pub.attach_external(wan, {});
  net::UdpStack ua(a->node()), ub(b->node());
  int got = 0;
  ub.bind(7, [&](const Endpoint&, const IpAddr&, crypto::Bytes) { ++got; });
  ua.send(9, Endpoint{IpAddr(b->private_ip()), 7}, crypto::Bytes(4, 0));
  net.loop().run();
  EXPECT_EQ(got, 1);
}

TEST(Cloud, MigrationMovesVmAndChangesIp) {
  net::Network net(3);
  Cloud ec2(net, ProviderProfile::ec2(), 1);
  auto* h0 = ec2.add_host();
  auto* h1 = ec2.add_host();
  auto* vm = ec2.launch("vm", InstanceType::small(), "t", h0);
  const auto old_ip = vm->private_ip();
  bool done = false;
  Cloud::MigrationReport report{};
  ec2.migrate(vm, h1, [&](const Cloud::MigrationReport& r) {
    report = r;
    done = true;
  });
  net.loop().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(vm->host(), h1);
  EXPECT_NE(vm->private_ip(), old_ip);
  EXPECT_EQ(vm->private_ip(), report.new_ip);
  EXPECT_GT(report.total, 0);
  EXPECT_GT(report.downtime, 0);
  EXPECT_LT(report.downtime, report.total);
  EXPECT_GE(report.bytes_copied,
            vm->type().memory_mb * std::size_t(1000000));
  EXPECT_EQ(h0->vm_count(), 0);
  EXPECT_EQ(h1->vm_count(), 1);
}

TEST(Cloud, MigratedVmIsReachableAtNewAddress) {
  net::Network net(3);
  Cloud ec2(net, ProviderProfile::ec2(), 1);
  auto* h0 = ec2.add_host();
  auto* h1 = ec2.add_host();
  auto* vm = ec2.launch("vm", InstanceType::small(), "t", h0);
  auto* peer = ec2.launch("peer", InstanceType::small(), "t", h0);
  net::UdpStack uv(vm->node()), up(peer->node());
  int got = 0;
  uv.bind(7, [&](const Endpoint&, const IpAddr&, crypto::Bytes) { ++got; });
  Ipv4Addr new_ip;
  ec2.migrate(vm, h1, [&](const Cloud::MigrationReport& r) {
    new_ip = r.new_ip;
  });
  net.loop().run();
  up.send(9, Endpoint{IpAddr(new_ip), 7}, crypto::Bytes(4, 0));
  net.loop().run();
  EXPECT_EQ(got, 1);
}

TEST(Cloud, HigherDirtyRateCopiesMore) {
  auto copied_with = [](double dirty_rate) {
    net::Network net(3);
    Cloud ec2(net, ProviderProfile::ec2(), 1);
    auto* h0 = ec2.add_host();
    auto* h1 = ec2.add_host();
    auto* vm = ec2.launch("vm", InstanceType::large(), "t", h0);
    std::size_t copied = 0;
    ec2.migrate(vm, h1,
                [&](const Cloud::MigrationReport& r) {
                  copied = r.bytes_copied;
                },
                dirty_rate);
    net.loop().run();
    return copied;
  };
  EXPECT_GT(copied_with(0.4), copied_with(0.05));
}

TEST(Cloud, MigrateToSameHostThrows) {
  net::Network net(3);
  Cloud ec2(net, ProviderProfile::ec2(), 1);
  auto* h0 = ec2.add_host();
  auto* vm = ec2.launch("vm", InstanceType::small(), "t", h0);
  EXPECT_THROW(ec2.migrate(vm, h0, nullptr), std::invalid_argument);
}

TEST(Vlan, SameVlanPasses) {
  net::Network net(4);
  Cloud ec2(net, ProviderProfile::ec2(), 1);
  ec2.add_host();
  ec2.add_host();
  auto* a = ec2.launch("a", InstanceType::small(), "tenant1");
  auto* b = ec2.launch("b", InstanceType::small(), "tenant1");
  VlanFabric vlan;
  vlan.assign(IpAddr(a->private_ip()), 100);
  vlan.assign(IpAddr(b->private_ip()), 100);
  vlan.enforce_on(ec2.fabric());
  net::UdpStack ua(a->node()), ub(b->node());
  int got = 0;
  ub.bind(7, [&](const Endpoint&, const IpAddr&, crypto::Bytes) { ++got; });
  ua.send(9, Endpoint{IpAddr(b->private_ip()), 7}, crypto::Bytes(4, 0));
  net.loop().run();
  EXPECT_EQ(got, 1);
  EXPECT_GT(vlan.passed(), 0u);
}

TEST(Vlan, CrossVlanBlocked) {
  net::Network net(4);
  Cloud ec2(net, ProviderProfile::ec2(), 1);
  ec2.add_host();
  ec2.add_host();
  auto* a = ec2.launch("a", InstanceType::small(), "tenant1");
  auto* b = ec2.launch("b", InstanceType::small(), "tenant2");
  VlanFabric vlan;
  vlan.assign(IpAddr(a->private_ip()), 100);
  vlan.assign(IpAddr(b->private_ip()), 200);
  vlan.enforce_on(ec2.fabric());
  net::UdpStack ua(a->node()), ub(b->node());
  int got = 0;
  ub.bind(7, [&](const Endpoint&, const IpAddr&, crypto::Bytes) { ++got; });
  ua.send(9, Endpoint{IpAddr(b->private_ip()), 7}, crypto::Bytes(4, 0));
  net.loop().run();
  EXPECT_EQ(got, 0);
  EXPECT_GT(vlan.dropped(), 0u);
}

TEST(CpuBurst, CreditsSpeedUpEarlyWork) {
  net::Network net(5);
  Cloud ec2(net, ProviderProfile::ec2(), 1);
  ec2.add_host();
  auto* vm = ec2.launch("vm", InstanceType::micro());
  auto& cpu = vm->node()->cpu();
  const double credits_before = cpu.remaining_credit_cycles();
  EXPECT_GT(credits_before, 0.0);
  // Burn more than the credit bucket; early work runs at burst speed.
  sim::Time first_done = 0, second_done = 0;
  const double half_bucket = credits_before / 2;
  cpu.run(half_bucket, [&] { first_done = net.loop().now(); });
  cpu.run(2 * credits_before, [&] { second_done = net.loop().now(); });
  net.loop().run();
  EXPECT_LT(cpu.remaining_credit_cycles(), 1.0);
  // First half-bucket at 2.0 ECU burst; the tail of the second chunk at
  // 0.35 ECU sustained — the tail dominates.
  const double first_seconds = sim::to_seconds(first_done);
  const double expected_first = half_bucket / (2.0 * 1.2e9);
  EXPECT_NEAR(first_seconds, expected_first, expected_first * 0.01);
  EXPECT_GT(sim::to_seconds(second_done), first_seconds * 4);
}

}  // namespace
}  // namespace hipcloud::cloud
