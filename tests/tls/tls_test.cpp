#include "tls/tls.hpp"

#include <gtest/gtest.h>

#include "net/link.hpp"

namespace hipcloud::tls {
namespace {

using crypto::Bytes;
using net::Endpoint;
using net::IpAddr;
using net::Ipv4Addr;

struct TlsTopo {
  net::Network net{21};
  net::Node* client_node;
  net::Node* server_node;
  net::TcpStack* tc;
  net::TcpStack* ts;
  std::unique_ptr<net::TcpStack> tc_owned, ts_owned;
  crypto::HmacDrbg ca_drbg{1, "ca"};
  CertificateAuthority ca{"hipcloud-ca", ca_drbg};
  crypto::RsaKeyPair server_key;
  TlsConfig server_cfg, client_cfg;

  TlsTopo() {
    client_node = net.add_node("client", 3e9);
    server_node = net.add_node("server", 3e9);
    const auto link = net.connect(client_node, server_node, {});
    client_node->add_address(link.iface_a, Ipv4Addr(10, 0, 0, 1));
    server_node->add_address(link.iface_b, Ipv4Addr(10, 0, 0, 2));
    client_node->set_default_route(link.iface_a);
    server_node->set_default_route(link.iface_b);
    tc_owned = std::make_unique<net::TcpStack>(client_node);
    ts_owned = std::make_unique<net::TcpStack>(server_node);
    tc = tc_owned.get();
    ts = ts_owned.get();

    crypto::HmacDrbg kd(2, "server-key");
    server_key = crypto::rsa_generate(kd, 1024);
    server_cfg.certificate = ca.issue("server", server_key.pub);
    server_cfg.private_key = server_key.priv;
    client_cfg.ca_public_key = ca.public_key();
  }

  /// Wire up a TLS server that echoes through `on_req`.
  void serve(std::function<Bytes(const Bytes&)> on_req,
             std::vector<std::shared_ptr<TlsSession>>& keep) {
    ts->listen(443, [this, on_req, &keep](auto conn) {
      auto session =
          TlsSession::server(conn, server_node, server_cfg, /*seed=*/99);
      session->on_data([session_weak = std::weak_ptr<TlsSession>(session),
                        on_req](Bytes data) {
        if (auto s = session_weak.lock()) s->send(on_req(data));
      });
      keep.push_back(std::move(session));
    });
  }
};

TEST(Tls, HandshakeCompletes) {
  TlsTopo topo;
  std::vector<std::shared_ptr<TlsSession>> keep;
  topo.serve([](const Bytes&) { return Bytes{}; }, keep);
  auto conn = topo.tc->connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 443});
  auto session =
      TlsSession::client(conn, topo.client_node, topo.client_cfg, 7);
  bool established = false;
  session->on_established([&] { established = true; });
  topo.net.loop().run();
  EXPECT_TRUE(established);
  EXPECT_GT(session->handshake_latency(), 0);
}

TEST(Tls, EchoRoundTrip) {
  TlsTopo topo;
  std::vector<std::shared_ptr<TlsSession>> keep;
  topo.serve(
      [](const Bytes& req) {
        Bytes out = crypto::to_bytes("echo:");
        out.insert(out.end(), req.begin(), req.end());
        return out;
      },
      keep);
  auto conn = topo.tc->connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 443});
  auto session =
      TlsSession::client(conn, topo.client_node, topo.client_cfg, 7);
  Bytes reply;
  session->on_data([&](Bytes data) { reply = std::move(data); });
  session->send(crypto::to_bytes("hello"));  // queued until handshake done
  topo.net.loop().run();
  EXPECT_EQ(reply, crypto::to_bytes("echo:hello"));
}

TEST(Tls, PlaintextNeverOnWire) {
  TlsTopo topo;
  // Tap every TCP segment on the wire via a middle node... simpler: a
  // direct link, so capture at the server's TCP layer is not possible.
  // Instead capture link traffic with a forward hook on a router topo.
  net::Network net{5};
  auto* c = net.add_node("c", 3e9);
  auto* r = net.add_node("r");
  auto* s = net.add_node("s", 3e9);
  const auto l1 = net.connect(c, r, {});
  const auto l2 = net.connect(r, s, {});
  c->add_address(l1.iface_a, Ipv4Addr(10, 0, 1, 1));
  r->add_address(l1.iface_b, Ipv4Addr(10, 0, 1, 254));
  r->add_address(l2.iface_a, Ipv4Addr(10, 0, 2, 254));
  s->add_address(l2.iface_b, Ipv4Addr(10, 0, 2, 1));
  c->set_default_route(l1.iface_a);
  s->set_default_route(l2.iface_b);
  r->add_route(IpAddr(Ipv4Addr(10, 0, 1, 0)), 24, l1.iface_b);
  r->add_route(IpAddr(Ipv4Addr(10, 0, 2, 0)), 24, l2.iface_a);
  r->set_forwarding(true);
  std::vector<Bytes> captured;
  r->set_forward_hook([&](net::Packet& pkt, std::size_t) {
    captured.push_back(pkt.payload);
    return true;
  });
  net::TcpStack tc(c), ts(s);
  std::vector<std::shared_ptr<TlsSession>> keep;
  ts.listen(443, [&](auto conn) {
    auto session = TlsSession::server(conn, s, topo.server_cfg, 1);
    keep.push_back(std::move(session));
  });
  auto conn = tc.connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 2, 1)), 443});
  auto session = TlsSession::client(conn, c, topo.client_cfg, 2);
  const Bytes secret = crypto::to_bytes("credit-card-4111111111111111");
  session->send(secret);
  net.loop().run();
  ASSERT_FALSE(captured.empty());
  for (const auto& wire : captured) {
    EXPECT_EQ(std::search(wire.begin(), wire.end(), secret.begin(),
                          secret.end()),
              wire.end());
  }
}

TEST(Tls, TamperedRecordMacRejectedOnWire) {
  // Flip the last byte of the first application record on the wire — the
  // final byte of its HMAC trailer, the one a short-circuiting compare
  // would weigh least. The server's ct_equal check must reject the record
  // and tear the session down without ever delivering the payload.
  TlsTopo topo;
  net::Network net{31};
  auto* c = net.add_node("c", 3e9);
  auto* r = net.add_node("r");
  auto* s = net.add_node("s", 3e9);
  const auto l1 = net.connect(c, r, {});
  const auto l2 = net.connect(r, s, {});
  c->add_address(l1.iface_a, Ipv4Addr(10, 0, 1, 1));
  r->add_address(l1.iface_b, Ipv4Addr(10, 0, 1, 254));
  r->add_address(l2.iface_a, Ipv4Addr(10, 0, 2, 254));
  s->add_address(l2.iface_b, Ipv4Addr(10, 0, 2, 1));
  c->set_default_route(l1.iface_a);
  s->set_default_route(l2.iface_b);
  r->add_route(IpAddr(Ipv4Addr(10, 0, 1, 0)), 24, l1.iface_b);
  r->add_route(IpAddr(Ipv4Addr(10, 0, 2, 0)), 24, l2.iface_a);
  r->set_forwarding(true);

  bool client_established = false;
  bool corrupted = false;
  r->set_forward_hook([&](net::Packet& pkt, std::size_t) {
    if (client_established && !corrupted &&
        pkt.dst == IpAddr(Ipv4Addr(10, 0, 2, 1)) &&
        pkt.payload.size() > net::TcpHeader::kSize) {
      pkt.payload[pkt.payload.size() - 1] ^= 0x01;
      corrupted = true;
    }
    return true;
  });

  net::TcpStack tc(c), ts(s);
  Bytes server_got;
  bool server_closed = false;
  std::vector<std::shared_ptr<TlsSession>> keep;
  ts.listen(443, [&](auto conn) {
    auto session = TlsSession::server(conn, s, topo.server_cfg, 1);
    session->on_data([&](Bytes data) { server_got = std::move(data); });
    session->on_close([&] { server_closed = true; });
    keep.push_back(std::move(session));
  });
  auto conn = tc.connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 2, 1)), 443});
  auto session = TlsSession::client(conn, c, topo.client_cfg, 2);
  session->on_established([&] { client_established = true; });
  session->send(crypto::to_bytes("tamper-me"));
  net.loop().run();

  EXPECT_TRUE(client_established);
  EXPECT_TRUE(corrupted);
  EXPECT_TRUE(server_got.empty()) << "tampered record was delivered";
  EXPECT_TRUE(server_closed);
}

TEST(Tls, ClientRejectsUntrustedCertificate) {
  TlsTopo topo;
  // Client trusts a different CA.
  crypto::HmacDrbg other_drbg(9, "other-ca");
  CertificateAuthority other_ca("evil-ca", other_drbg);
  topo.client_cfg.ca_public_key = other_ca.public_key();
  std::vector<std::shared_ptr<TlsSession>> keep;
  topo.serve([](const Bytes&) { return Bytes{}; }, keep);
  auto conn = topo.tc->connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 443});
  auto session =
      TlsSession::client(conn, topo.client_node, topo.client_cfg, 7);
  bool established = false, closed = false;
  session->on_established([&] { established = true; });
  session->on_close([&] { closed = true; });
  topo.net.loop().run();
  EXPECT_FALSE(established);
  EXPECT_TRUE(closed);
}

TEST(Tls, ServerWithoutCertFailsGracefully) {
  TlsTopo topo;
  topo.server_cfg.certificate.reset();
  std::vector<std::shared_ptr<TlsSession>> keep;
  topo.serve([](const Bytes&) { return Bytes{}; }, keep);
  auto conn = topo.tc->connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 443});
  auto session =
      TlsSession::client(conn, topo.client_node, topo.client_cfg, 7);
  bool established = false;
  session->on_established([&] { established = true; });
  topo.net.loop().run();
  EXPECT_FALSE(established);
}

TEST(Tls, LargeTransfer) {
  TlsTopo topo;
  std::vector<std::shared_ptr<TlsSession>> keep;
  std::size_t server_received = 0;
  topo.ts->listen(443, [&](auto conn) {
    auto session =
        TlsSession::server(conn, topo.server_node, topo.server_cfg, 3);
    session->on_data([&](Bytes data) { server_received += data.size(); });
    keep.push_back(std::move(session));
  });
  auto conn = topo.tc->connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 443});
  auto session =
      TlsSession::client(conn, topo.client_node, topo.client_cfg, 7);
  constexpr std::size_t kChunk = 16000;
  constexpr int kChunks = 10;
  session->on_established([&] {
    for (int i = 0; i < kChunks; ++i) session->send(Bytes(kChunk, 0x5a));
  });
  topo.net.loop().run();
  EXPECT_EQ(server_received, kChunk * kChunks);
}

TEST(Tls, CloseAlertPropagates) {
  TlsTopo topo;
  std::vector<std::shared_ptr<TlsSession>> keep;
  bool server_closed = false;
  topo.ts->listen(443, [&](auto conn) {
    auto session =
        TlsSession::server(conn, topo.server_node, topo.server_cfg, 3);
    session->on_close([&] { server_closed = true; });
    keep.push_back(std::move(session));
  });
  auto conn = topo.tc->connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 443});
  auto session =
      TlsSession::client(conn, topo.client_node, topo.client_cfg, 7);
  session->on_established([&] { session->close(); });
  topo.net.loop().run();
  EXPECT_TRUE(server_closed);
}

TEST(Tls, HandshakeChargesCpuTime) {
  // The handshake on a slow CPU must take longer than on a fast one.
  auto run_with_cpu = [](double cps) {
    TlsTopo topo;
    topo.client_node->cpu().set_cycles_per_second(cps);
    topo.server_node->cpu().set_cycles_per_second(cps);
    std::vector<std::shared_ptr<TlsSession>> keep;
    topo.serve([](const Bytes&) { return Bytes{}; }, keep);
    auto conn =
        topo.tc->connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 443});
    auto session =
        TlsSession::client(conn, topo.client_node, topo.client_cfg, 7);
    sim::Duration latency = 0;
    session->on_established([&] { latency = session->handshake_latency(); });
    topo.net.loop().run();
    return latency;
  };
  const auto fast = run_with_cpu(10e9);
  const auto slow = run_with_cpu(0.5e9);
  EXPECT_GT(fast, 0);
  EXPECT_GT(slow, fast);
}

TEST(CertificateAuthority, IssueAndVerify) {
  crypto::HmacDrbg drbg(1, "ca");
  CertificateAuthority ca("root", drbg);
  crypto::HmacDrbg kd(2, "leaf");
  const auto leaf = crypto::rsa_generate(kd, 1024);
  const Certificate cert = ca.issue("www.example", leaf.pub);
  EXPECT_TRUE(CertificateAuthority::verify(ca.public_key(), cert));
  EXPECT_EQ(cert.subject, "www.example");
  EXPECT_EQ(cert.issuer, "root");
}

TEST(CertificateAuthority, TamperedCertFailsVerification) {
  crypto::HmacDrbg drbg(1, "ca");
  CertificateAuthority ca("root", drbg);
  crypto::HmacDrbg kd(2, "leaf");
  const auto leaf = crypto::rsa_generate(kd, 1024);
  Certificate cert = ca.issue("www.example", leaf.pub);
  cert.subject = "www.evil";
  EXPECT_FALSE(CertificateAuthority::verify(ca.public_key(), cert));
}

TEST(Certificate, EncodeDecodeRoundTrip) {
  crypto::HmacDrbg drbg(1, "ca");
  CertificateAuthority ca("root", drbg);
  crypto::HmacDrbg kd(2, "leaf");
  const auto leaf = crypto::rsa_generate(kd, 1024);
  const Certificate cert = ca.issue("svc", leaf.pub);
  const Certificate back = Certificate::decode(cert.encode());
  EXPECT_EQ(back.subject, cert.subject);
  EXPECT_EQ(back.issuer, cert.issuer);
  EXPECT_EQ(back.public_key, cert.public_key);
  EXPECT_EQ(back.signature, cert.signature);
  EXPECT_THROW(Certificate::decode(crypto::Bytes{0xff}), std::runtime_error);
}

// Regression: a 4-byte record header claiming a multi-megabyte body used
// to make the receiver buffer connection bytes forever waiting for a
// payload that never arrives. The record layer now caps the claimed
// length (kMaxRecordLen) and fails the session immediately.
TEST(Tls, OversizedRecordHeaderRejected) {
  TlsTopo topo;
  std::vector<std::shared_ptr<TlsSession>> keep;
  bool server_closed = false;
  topo.ts->listen(443, [&](auto conn) {
    auto session =
        TlsSession::server(conn, topo.server_node, topo.server_cfg, 99);
    session->on_close([&] { server_closed = true; });
    keep.push_back(std::move(session));
  });
  // Raw TCP client, no TLS: handshake record type with a 2 MiB length.
  auto conn = topo.tc->connect(Endpoint{IpAddr(Ipv4Addr(10, 0, 0, 2)), 443});
  conn->on_connect([&] { conn->send(Bytes{0x16, 0x20, 0x00, 0x00}); });
  topo.net.loop().run();
  EXPECT_TRUE(server_closed);
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_FALSE(keep[0]->established());
}

}  // namespace
}  // namespace hipcloud::tls
