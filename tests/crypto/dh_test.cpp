#include "crypto/dh.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace hipcloud::crypto {
namespace {

class DhGroupTest : public ::testing::TestWithParam<DhGroup> {};

TEST_P(DhGroupTest, AgreementMatches) {
  HmacDrbg da(1, "alice"), db(2, "bob");
  DhKeyPair alice(GetParam(), da);
  DhKeyPair bob(GetParam(), db);
  const Bytes sa = alice.compute_shared(bob.public_value());
  const Bytes sb = bob.compute_shared(alice.public_value());
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa.size(), dh_params(GetParam()).prime_bytes);
}

TEST_P(DhGroupTest, PublicValueFixedWidth) {
  HmacDrbg d(3, "w");
  DhKeyPair kp(GetParam(), d);
  EXPECT_EQ(kp.public_value().size(), dh_params(GetParam()).prime_bytes);
}

TEST_P(DhGroupTest, RejectsDegeneratePeerValues) {
  HmacDrbg d(4, "degenerate");
  DhKeyPair kp(GetParam(), d);
  const auto& params = dh_params(GetParam());
  EXPECT_THROW(kp.compute_shared(BigInt(0).to_bytes_be(params.prime_bytes)),
               std::runtime_error);
  EXPECT_THROW(kp.compute_shared(BigInt(1).to_bytes_be(params.prime_bytes)),
               std::runtime_error);
  EXPECT_THROW(
      kp.compute_shared((params.p - BigInt(1)).to_bytes_be(params.prime_bytes)),
      std::runtime_error);
  EXPECT_THROW(kp.compute_shared(params.p.to_bytes_be(params.prime_bytes)),
               std::runtime_error);
}

TEST_P(DhGroupTest, DifferentKeysGiveDifferentSecrets) {
  HmacDrbg d1(5, "a"), d2(6, "b"), d3(7, "c");
  DhKeyPair a(GetParam(), d1), b(GetParam(), d2), c(GetParam(), d3);
  EXPECT_NE(a.compute_shared(b.public_value()),
            a.compute_shared(c.public_value()));
}

INSTANTIATE_TEST_SUITE_P(AllGroups, DhGroupTest,
                         ::testing::Values(DhGroup::kModp1536,
                                           DhGroup::kModp2048,
                                           DhGroup::kModp3072));

TEST(DhParams, PrimesArePrime) {
  HmacDrbg drbg(1, "dh-prime-check");
  // Full Miller-Rabin on 1536-bit primes is slow; 4 rounds is ample for a
  // sanity check of transcription (the constants are published values).
  EXPECT_TRUE(
      BigInt::is_probable_prime(dh_params(DhGroup::kModp1536).p, drbg, 4));
}

TEST(DhParams, GroupSizes) {
  EXPECT_EQ(dh_params(DhGroup::kModp1536).p.bit_length(), 1536u);
  EXPECT_EQ(dh_params(DhGroup::kModp2048).p.bit_length(), 2048u);
  EXPECT_EQ(dh_params(DhGroup::kModp3072).p.bit_length(), 3072u);
  EXPECT_EQ(dh_params(DhGroup::kModp2048).g, BigInt(2));
}

TEST(DhKeyPair, DeterministicFromSeed) {
  HmacDrbg a(9, "same"), b(9, "same");
  EXPECT_EQ(DhKeyPair(DhGroup::kModp1536, a).public_value(),
            DhKeyPair(DhGroup::kModp1536, b).public_value());
}

}  // namespace
}  // namespace hipcloud::crypto
