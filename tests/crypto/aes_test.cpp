#include "crypto/aes.hpp"

#include <gtest/gtest.h>

namespace hipcloud::crypto {
namespace {

// FIPS 197 Appendix C.1: AES-128.
TEST(Aes, Fips197Aes128KnownAnswer) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(BytesView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(BytesView(back, 16)), to_hex(pt));
}

// FIPS 197 Appendix C.3: AES-256.
TEST(Aes, Fips197Aes256KnownAnswer) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(BytesView(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(BytesView(back, 16)), to_hex(pt));
}

// NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first block.
TEST(Aes, Sp80038aCtrVector) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  // SP 800-38A uses counter block f0f1...ff; our API takes nonce(12)+ctr(4).
  const Bytes nonce = from_hex("f0f1f2f3f4f5f6f7f8f9fafb");
  const std::uint32_t ctr0 = 0xfcfdfeff;
  const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  Aes aes(key);
  const Bytes ct = aes_ctr(aes, nonce, ctr0, pt);
  EXPECT_EQ(to_hex(ct), "874d6191b620e3261bef6864990db6ce");
}

TEST(Aes, CtrRoundTripArbitraryLengths) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes nonce(12, 0xab);
  Aes aes(key);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1500u}) {
    Bytes pt(len);
    for (std::size_t i = 0; i < len; ++i) pt[i] = static_cast<std::uint8_t>(i);
    const Bytes ct = aes_ctr(aes, nonce, 1, pt);
    EXPECT_EQ(aes_ctr(aes, nonce, 1, ct), pt) << "len=" << len;
    if (len > 0) {
      EXPECT_NE(ct, pt);
    }
  }
}

TEST(Aes, CbcRoundTrip) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes iv(16, 0x42);
  Aes aes(key);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 255u}) {
    Bytes pt(len, 0x5a);
    const Bytes ct = aes_cbc_encrypt(aes, iv, pt);
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), pt.size());  // always at least one pad byte
    EXPECT_EQ(aes_cbc_decrypt(aes, iv, ct), pt) << "len=" << len;
  }
}

TEST(Aes, CbcDetectsTampering) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes iv(16, 0);
  Aes aes(key);
  Bytes ct = aes_cbc_encrypt(aes, iv, Bytes(10, 0x77));
  ct.back() ^= 0xff;  // corrupt padding region
  // Either throws (bad padding) or yields different plaintext; padding
  // oracle behaviour is acceptable in the simulator since the HIP/TLS
  // layers authenticate before decrypting.
  try {
    const Bytes pt = aes_cbc_decrypt(aes, iv, ct);
    EXPECT_NE(pt, Bytes(10, 0x77));
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(24, 0)), std::invalid_argument);  // no AES-192 here
  EXPECT_THROW(Aes(Bytes(0, 0)), std::invalid_argument);
}

TEST(Aes, RejectsBadIvAndNonce) {
  Aes aes(Bytes(16, 1));
  EXPECT_THROW(aes_ctr(aes, Bytes(11, 0), 0, Bytes(4, 0)),
               std::invalid_argument);
  EXPECT_THROW(aes_cbc_encrypt(aes, Bytes(15, 0), Bytes(4, 0)),
               std::invalid_argument);
  EXPECT_THROW(aes_cbc_decrypt(aes, Bytes(16, 0), Bytes(15, 0)),
               std::runtime_error);
}

}  // namespace
}  // namespace hipcloud::crypto
