#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "crypto/bytes.hpp"

namespace hipcloud::crypto {
namespace {

// FIPS 180-4 / NIST CAVP vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::digest(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(Sha256::digest(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finish();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    const auto d = h.finish();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Sha256::digest(msg));
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(to_bytes("garbage"));
  h.reset();
  h.update(to_bytes("abc"));
  const auto d = h.finish();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// Boundary lengths around the 64-byte block/55-56 byte padding edge.
TEST(Sha256, PaddingBoundaries) {
  // 55 bytes: fits length in first block; 56: forces a second block.
  const Bytes m55(55, 'x');
  const Bytes m56(56, 'x');
  const Bytes m64(64, 'x');
  EXPECT_NE(Sha256::digest(m55), Sha256::digest(m56));
  EXPECT_NE(Sha256::digest(m56), Sha256::digest(m64));
  // Determinism.
  EXPECT_EQ(Sha256::digest(m64), Sha256::digest(m64));
}

// RFC 3174-style SHA-1 vectors (used for HIPv1 HIT derivation).
TEST(Sha1, Abc) {
  EXPECT_EQ(to_hex(sha1(to_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Empty) {
  EXPECT_EQ(to_hex(sha1({})), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, LongerVector) {
  EXPECT_EQ(to_hex(sha1(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

}  // namespace
}  // namespace hipcloud::crypto
