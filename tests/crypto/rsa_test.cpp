#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace hipcloud::crypto {
namespace {

// 1024-bit keys keep keygen fast in tests; the protocol layers default to
// the same size the paper's HIPL deployment used (1024-bit RSA HIs).
class RsaTest : public ::testing::Test {
 protected:
  static const RsaKeyPair& keypair() {
    static const RsaKeyPair kp = [] {
      HmacDrbg drbg(42, "rsa-test");
      return rsa_generate(drbg, 1024);
    }();
    return kp;
  }
};

TEST_F(RsaTest, KeyHasExpectedShape) {
  const auto& kp = keypair();
  EXPECT_EQ(kp.pub.n.bit_length(), 1024u);
  EXPECT_EQ(kp.pub.e, BigInt(65537));
  EXPECT_EQ(kp.priv.p * kp.priv.q, kp.pub.n);
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const Bytes msg = to_bytes("host identity protocol base exchange");
  const Bytes sig = rsa_sign_pkcs1(keypair().priv, msg);
  EXPECT_EQ(sig.size(), 128u);
  EXPECT_TRUE(rsa_verify_pkcs1(keypair().pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsWrongMessage) {
  const Bytes sig = rsa_sign_pkcs1(keypair().priv, to_bytes("message A"));
  EXPECT_FALSE(rsa_verify_pkcs1(keypair().pub, to_bytes("message B"), sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  const Bytes msg = to_bytes("message");
  Bytes sig = rsa_sign_pkcs1(keypair().priv, msg);
  sig[10] ^= 0x01;
  EXPECT_FALSE(rsa_verify_pkcs1(keypair().pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsWrongLengthSignature) {
  const Bytes msg = to_bytes("message");
  Bytes sig = rsa_sign_pkcs1(keypair().priv, msg);
  sig.pop_back();
  EXPECT_FALSE(rsa_verify_pkcs1(keypair().pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
  HmacDrbg drbg(77, "other-key");
  const RsaKeyPair other = rsa_generate(drbg, 1024);
  const Bytes msg = to_bytes("message");
  const Bytes sig = rsa_sign_pkcs1(keypair().priv, msg);
  EXPECT_FALSE(rsa_verify_pkcs1(other.pub, msg, sig));
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  HmacDrbg drbg(1, "enc");
  const Bytes pt = to_bytes("48-byte TLS premaster secret equivalent....!");
  const Bytes ct = rsa_encrypt_pkcs1(keypair().pub, drbg, pt);
  EXPECT_EQ(ct.size(), 128u);
  EXPECT_EQ(rsa_decrypt_pkcs1(keypair().priv, ct), pt);
}

TEST_F(RsaTest, EncryptionIsRandomized) {
  HmacDrbg drbg(2, "enc2");
  const Bytes pt = to_bytes("hello");
  EXPECT_NE(rsa_encrypt_pkcs1(keypair().pub, drbg, pt),
            rsa_encrypt_pkcs1(keypair().pub, drbg, pt));
}

TEST_F(RsaTest, EncryptRejectsOversizedMessage) {
  HmacDrbg drbg(3, "enc3");
  EXPECT_THROW(rsa_encrypt_pkcs1(keypair().pub, drbg, Bytes(120, 0)),
               std::invalid_argument);
}

TEST_F(RsaTest, DecryptRejectsGarbage) {
  EXPECT_THROW(rsa_decrypt_pkcs1(keypair().priv, Bytes(128, 0xab)),
               std::runtime_error);
  EXPECT_THROW(rsa_decrypt_pkcs1(keypair().priv, Bytes(10, 0)),
               std::runtime_error);
}

TEST_F(RsaTest, PublicKeyEncodeDecodeRoundTrip) {
  const Bytes encoded = keypair().pub.encode();
  const RsaPublicKey decoded = RsaPublicKey::decode(encoded);
  EXPECT_EQ(decoded, keypair().pub);
}

TEST_F(RsaTest, PublicKeyDecodeRejectsTruncated) {
  EXPECT_THROW(RsaPublicKey::decode(Bytes{0x00}), std::runtime_error);
  Bytes bad = keypair().pub.encode();
  bad.resize(3);
  EXPECT_THROW(RsaPublicKey::decode(bad), std::runtime_error);
}

TEST(RsaGenerate, DeterministicFromSeed) {
  HmacDrbg a(5, "same");
  HmacDrbg b(5, "same");
  EXPECT_EQ(rsa_generate(a, 512).pub.n, rsa_generate(b, 512).pub.n);
}

TEST(RsaGenerate, RejectsTinyModulus) {
  HmacDrbg drbg(6, "tiny");
  EXPECT_THROW(rsa_generate(drbg, 64), std::invalid_argument);
  EXPECT_THROW(rsa_generate(drbg, 513), std::invalid_argument);
}

TEST(RsaGenerate, SignatureWorksAcrossKeySizes) {
  for (std::size_t bits : {512u, 768u}) {
    HmacDrbg drbg(bits, "size-sweep");
    const RsaKeyPair kp = rsa_generate(drbg, bits);
    const Bytes msg = to_bytes("msg");
    EXPECT_TRUE(rsa_verify_pkcs1(kp.pub, msg, rsa_sign_pkcs1(kp.priv, msg)))
        << bits;
  }
}

}  // namespace
}  // namespace hipcloud::crypto
