#include "crypto/drbg.hpp"

#include <gtest/gtest.h>

#include <map>

namespace hipcloud::crypto {
namespace {

TEST(HmacDrbg, DeterministicForSameSeed) {
  HmacDrbg a(42, "host-a");
  HmacDrbg b(42, "host-a");
  EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(HmacDrbg, PersonalizationSeparatesStreams) {
  HmacDrbg a(42, "host-a");
  HmacDrbg b(42, "host-b");
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, SeedSeparatesStreams) {
  HmacDrbg a(1, "x");
  HmacDrbg b(2, "x");
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, SuccessiveCallsDiffer) {
  HmacDrbg d(7, "x");
  const Bytes first = d.generate(32);
  const Bytes second = d.generate(32);
  EXPECT_NE(first, second);
}

TEST(HmacDrbg, SplitRequestsMatchSingleRequest) {
  // generate(64) equals generate(32)+generate(32) only if the state
  // update happens per call; verify our chosen semantics are stable.
  HmacDrbg a(9, "x");
  HmacDrbg b(9, "x");
  const Bytes one = a.generate(64);
  Bytes two = b.generate(32);
  const Bytes more = b.generate(32);
  two.insert(two.end(), more.begin(), more.end());
  // Per SP 800-90A, each generate() call finishes with an update, so the
  // streams intentionally differ after the first 32 bytes.
  EXPECT_TRUE(std::equal(two.begin(), two.begin() + 32, one.begin()));
  EXPECT_NE(two, one);
}

TEST(HmacDrbg, ReseedChangesOutput) {
  HmacDrbg a(11, "x");
  HmacDrbg b(11, "x");
  b.reseed(to_bytes("extra entropy"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, OutputLooksUniform) {
  HmacDrbg d(13, "uniformity");
  const Bytes out = d.generate(65536);
  // Chi-squared-ish sanity: every byte value should appear.
  std::map<std::uint8_t, int> counts;
  for (std::uint8_t b : out) ++counts[b];
  EXPECT_EQ(counts.size(), 256u);
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 128) << int(value);  // expected 256 each
    EXPECT_LT(count, 512) << int(value);
  }
}

TEST(HmacDrbg, ZeroLengthRequest) {
  HmacDrbg d(15, "x");
  EXPECT_TRUE(d.generate(0).empty());
}

}  // namespace
}  // namespace hipcloud::crypto
