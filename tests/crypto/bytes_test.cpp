#include "crypto/bytes.hpp"

#include <gtest/gtest.h>

namespace hipcloud::crypto {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes b = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(to_hex(b), "deadbeef");
  EXPECT_EQ(from_hex("deadbeef"), b);
  EXPECT_EQ(from_hex("DEADBEEF"), b);
}

TEST(Bytes, FromHexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // bad digit
}

TEST(Bytes, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, CtEqualBasic) {
  EXPECT_TRUE(ct_equal(from_hex("0102"), from_hex("0102")));
  EXPECT_FALSE(ct_equal(from_hex("0102"), from_hex("0103")));
  EXPECT_FALSE(ct_equal(from_hex("0102"), from_hex("010203")));
  EXPECT_TRUE(ct_equal({}, {}));
}

// The property the ESP ICV and TLS record MAC checks rely on: a single
// corrupted byte is detected no matter where it sits, including the very
// last position (which a short-circuiting memcmp would reach latest —
// the timing oracle ct_equal exists to close).
TEST(Bytes, CtEqualMismatchAtEveryBytePosition) {
  constexpr std::size_t kLen = 32;  // SHA-256 MAC / ICV width
  Bytes ref(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    ref[i] = static_cast<std::uint8_t>(0xa5 ^ i);
  }
  EXPECT_TRUE(ct_equal(ref, ref));
  for (std::size_t pos = 0; pos < kLen; ++pos) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
      Bytes bad = ref;
      bad[pos] = static_cast<std::uint8_t>(bad[pos] ^ flip);
      EXPECT_FALSE(ct_equal(ref, bad)) << "undetected flip 0x" << std::hex
                                       << int{flip} << " at byte " << std::dec
                                       << pos;
      EXPECT_FALSE(ct_equal(bad, ref)) << "asymmetric at byte " << pos;
    }
  }
}

TEST(Bytes, XorInplace) {
  Bytes a = from_hex("ff00ff00");
  xor_inplace(a, from_hex("0f0f0f0f"));
  EXPECT_EQ(to_hex(a), "f00ff00f");
  Bytes b = from_hex("01");
  EXPECT_THROW(xor_inplace(b, from_hex("0102")), std::invalid_argument);
}

TEST(Bytes, AppendReadBeRoundTrip) {
  Bytes out;
  append_be(out, 0x123456789abcdef0ULL, 8);
  append_be(out, 0xbeef, 2);
  EXPECT_EQ(read_be(out, 0, 8), 0x123456789abcdef0ULL);
  EXPECT_EQ(read_be(out, 8, 2), 0xbeefu);
}

TEST(Bytes, ReadBeRangeChecks) {
  const Bytes b = {1, 2, 3};
  EXPECT_THROW(read_be(b, 2, 2), std::out_of_range);
  EXPECT_THROW(read_be(b, 0, 9), std::out_of_range);
  EXPECT_EQ(read_be(b, 0, 3), 0x010203u);
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  const Bytes c = concat({a, b, a});
  EXPECT_EQ(c, (Bytes{1, 2, 3, 1, 2}));
}

TEST(Bytes, ToBytesFromString) {
  EXPECT_EQ(to_bytes("AB"), (Bytes{0x41, 0x42}));
  EXPECT_TRUE(to_bytes("").empty());
}

}  // namespace
}  // namespace hipcloud::crypto
