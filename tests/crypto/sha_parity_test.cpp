// Cross-backend parity fuzz: every SHA-256 tier — scalar, SHA-NI, and
// each multi-buffer lane width — must produce bit-identical digests and
// HMAC tags for randomized lengths, keys, and batch shapes. The scalar
// compression (verified against NIST vectors in sha256_test.cpp) is the
// reference; everything else must match it exactly.
//
// Backends are flipped in-process via the test hooks that mirror the
// HIPCLOUD_NO_SHANI / HIPCLOUD_NO_SHAMB env knobs; the CTest registration
// also re-runs this binary with those env knobs set (see CMakeLists.txt)
// to prove the knobs themselves are honored and the portable tier works.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha_mb.hpp"
#include "crypto/sha_ni.hpp"

namespace hipcloud::crypto {
namespace {

// Deterministic xorshift64* so failures reproduce byte-for-byte.
struct Rng {
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s * 0x2545f4914f6cdd1dULL;
  }
  std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }
  Bytes bytes(std::size_t n) {
    Bytes out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(next());
    return out;
  }
};

// Restore auto dispatch even when an ASSERT bails out of a test body.
struct BackendGuard {
  ~BackendGuard() {
    sha256_backend::set_for_test(sha256_backend::Kind::kAuto);
    shamb::set_lane_cap_for_test(0);
  }
};

// Lengths hammer the padding/tail boundaries (0, 55, 56, 63, 64, 119,
// 120, 128...) plus a random spread up to several KB.
std::vector<Bytes> fuzz_messages(Rng& rng) {
  std::vector<Bytes> msgs;
  for (std::size_t len = 0; len <= 130; ++len) msgs.push_back(rng.bytes(len));
  for (int i = 0; i < 40; ++i) msgs.push_back(rng.bytes(rng.below(5000)));
  return msgs;
}

TEST(ShaParity, ShaNiMatchesScalarStreaming) {
  BackendGuard guard;
  if (!shani::supported()) {
    GTEST_SKIP() << "CPU lacks SHA-NI (or HIPCLOUD_NO_SHANI set)";
  }
  Rng rng;
  const auto msgs = fuzz_messages(rng);
  for (const auto& msg : msgs) {
    sha256_backend::set_for_test(sha256_backend::Kind::kScalar);
    const Bytes want = Sha256::digest(msg);

    sha256_backend::set_for_test(sha256_backend::Kind::kShaNi);
    ASSERT_STREQ(sha256_backend::active_name(), "sha-ni");
    EXPECT_EQ(Sha256::digest(msg), want) << "len=" << msg.size();

    // Chunked updates cross the buffered-partial-block path into the bulk
    // backend call at random offsets.
    Sha256 h;
    std::size_t off = 0;
    while (off < msg.size()) {
      const std::size_t take = std::min(1 + rng.below(97), msg.size() - off);
      h.update(BytesView(msg.data() + off, take));
      off += take;
    }
    const auto chunked = h.finish();
    EXPECT_EQ(Bytes(chunked.begin(), chunked.end()), want)
        << "chunked len=" << msg.size();
  }
}

TEST(ShaParity, DualStreamCompressMatchesTwoSingleStreamCalls) {
  if (!shani::supported()) {
    GTEST_SKIP() << "CPU lacks SHA-NI (or HIPCLOUD_NO_SHANI set)";
  }
  Rng rng;
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t nblocks = 1 + rng.below(9);
    const Bytes blocks_a = rng.bytes(64 * nblocks);
    const Bytes blocks_b = rng.bytes(64 * nblocks);
    std::uint32_t want_a[8], want_b[8], got_a[8], got_b[8];
    for (int i = 0; i < 8; ++i) {
      want_a[i] = got_a[i] = static_cast<std::uint32_t>(rng.next());
      want_b[i] = got_b[i] = static_cast<std::uint32_t>(rng.next());
    }
    shani::compress(want_a, blocks_a.data(), nblocks);
    shani::compress(want_b, blocks_b.data(), nblocks);
    shani::compress2(got_a, blocks_a.data(), got_b, blocks_b.data(), nblocks);
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(got_a[i], want_a[i]) << "trial=" << trial << " word=" << i;
      ASSERT_EQ(got_b[i], want_b[i]) << "trial=" << trial << " word=" << i;
    }
  }
}

TEST(ShaParity, MultiBufferMatchesStreamingHmacAtEveryLaneWidth) {
  BackendGuard guard;
  Rng rng;
  const auto msgs = fuzz_messages(rng);

  for (int trial = 0; trial < 12; ++trial) {
    const Bytes key = rng.bytes(trial == 0 ? 0 : rng.below(100));
    // Reference tags from the scalar streaming HMAC.
    sha256_backend::set_for_test(sha256_backend::Kind::kScalar);
    shamb::set_lane_cap_for_test(1);
    HmacSha256 ref(key);
    std::vector<Bytes> want;
    for (const auto& msg : msgs) {
      ref.reset();
      ref.update(msg);
      Bytes tag(HmacSha256::kDigestSize);
      ref.finish(tag.data());
      want.push_back(std::move(tag));
    }

    sha256_backend::set_for_test(sha256_backend::Kind::kAuto);
    for (const std::size_t cap : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8}}) {
      shamb::set_lane_cap_for_test(cap);
      HmacSha256Mb mb(key);
      std::vector<Bytes> got(msgs.size(), Bytes(HmacSha256::kDigestSize));
      std::vector<HmacSha256Mb::Job> jobs(msgs.size());
      for (std::size_t i = 0; i < msgs.size(); ++i) {
        jobs[i] = {msgs[i].data(), msgs[i].size(), got[i].data()};
      }
      // Uneven batch slices exercise partial lane groups and the
      // mixed-length dummy-lane scheduling.
      std::size_t at = 0;
      while (at < jobs.size()) {
        const std::size_t n = std::min(1 + rng.below(11), jobs.size() - at);
        mb.compute(jobs.data() + at, n);
        at += n;
      }
      for (std::size_t i = 0; i < msgs.size(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << "lanes=" << shamb::lane_width() << " msg=" << i
            << " len=" << msgs[i].size();
      }
    }
  }
}

TEST(ShaParity, EnvOptOutsAreHonored) {
  // Only meaningful in the CTest variant that sets the knobs; documents
  // the expected default otherwise.
  if (std::getenv("HIPCLOUD_NO_SHANI") != nullptr) {
    EXPECT_FALSE(shani::supported());
    EXPECT_STREQ(sha256_backend::active_name(), "scalar");
  }
  if (std::getenv("HIPCLOUD_NO_SHAMB") != nullptr) {
    EXPECT_EQ(shamb::lane_width(), 1u);
    // Width 1 reports the single-stream backend it falls back to.
    EXPECT_STREQ(shamb::active_name(), sha256_backend::active_name());
  }
  if (const char* lanes = std::getenv("HIPCLOUD_SHAMB_LANES")) {
    EXPECT_LE(shamb::lane_width(),
              static_cast<std::size_t>(std::strtoul(lanes, nullptr, 10)));
  }
}

}  // namespace
}  // namespace hipcloud::crypto
