#include "crypto/buffer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/perf.hpp"

namespace hipcloud::crypto {
namespace {

bool same_bytes(const Buffer& buf, const Bytes& expect) {
  return buf.size() == expect.size() &&
         std::equal(expect.begin(), expect.end(), buf.begin());
}

Bytes pattern(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(seed + i);
  }
  return b;
}

// Two live buffers drawn from the same pool must never share a block:
// writing through one must be invisible through the other. This is the
// safety property the whole zero-copy datapath rests on — a pooled block
// is recycled only after its buffer dies.
TEST(BufferPool, LiveBuffersNeverAlias) {
  BufferPool pool;
  Buffer a = pool.make(100);
  std::fill(a.begin(), a.end(), 0xAA);
  Buffer b = pool.make(100);
  std::fill(b.begin(), b.end(), 0xBB);
  EXPECT_NE(a.data(), b.data());
  EXPECT_TRUE(std::all_of(a.begin(), a.end(),
                          [](std::uint8_t x) { return x == 0xAA; }));
  // Same check under churn: many buffers live at once, distinct blocks.
  std::vector<Buffer> live;
  for (int i = 0; i < 32; ++i) {
    live.push_back(pool.make(200, /*headroom=*/16, /*tailroom=*/16));
    std::fill(live.back().begin(), live.back().end(),
              static_cast<std::uint8_t>(i));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(std::all_of(
        live[static_cast<std::size_t>(i)].begin(),
        live[static_cast<std::size_t>(i)].end(),
        [i](std::uint8_t x) { return x == static_cast<std::uint8_t>(i); }))
        << "buffer " << i << " was clobbered by a later allocation";
  }
}

TEST(BufferPool, RecyclesBlocksAfterRelease) {
  BufferPool pool;
  EXPECT_EQ(pool.cached_blocks(), 0u);
  const std::uint8_t* first_block = nullptr;
  {
    Buffer a = pool.make(100);
    first_block = a.data() - a.headroom();
    EXPECT_EQ(pool.cached_blocks(), 0u);  // live, not cached
  }
  EXPECT_EQ(pool.cached_blocks(), 1u);
  Buffer b = pool.make(100);
  // Same size class -> the freelist hands the identical block back.
  EXPECT_EQ(b.data() - b.headroom(), first_block);
  EXPECT_EQ(pool.cached_blocks(), 0u);
  // The recycled window is uninitialised but fully writable.
  std::fill(b.begin(), b.end(), 0xCD);
  EXPECT_TRUE(std::all_of(b.begin(), b.end(),
                          [](std::uint8_t x) { return x == 0xCD; }));
}

TEST(BufferPool, OversizeBlocksAreNotCached) {
  BufferPool pool;
  { Buffer big = pool.make(2 * BufferPool::kMaxClass); }
  EXPECT_EQ(pool.cached_blocks(), 0u);
  { Buffer small = pool.make(32); }
  EXPECT_EQ(pool.cached_blocks(), 1u);
}

TEST(BufferPool, CountersTrackHitsMissesReturns) {
  BufferPool pool;
  sim::PerfCounters perf;
  pool.set_perf(&perf);
  { Buffer a = pool.make(100); }  // miss (cold pool), then return
  EXPECT_EQ(perf.pool_misses, 1u);
  EXPECT_EQ(perf.pool_hits, 0u);
  EXPECT_EQ(perf.pool_returns, 1u);
  { Buffer b = pool.make(100); }  // hit, then return
  EXPECT_EQ(perf.pool_misses, 1u);
  EXPECT_EQ(perf.pool_hits, 1u);
  EXPECT_EQ(perf.pool_returns, 2u);
  EXPECT_DOUBLE_EQ(perf.pool_hit_rate(), 0.5);
}

// The in-place encapsulation round trip: reserve room once at the source,
// then every layer's header/trailer lands in the same block with zero
// reallocation — the exact pattern TCP transmit -> ESP -> UDP-encap uses.
TEST(Buffer, PrependAppendPopRoundTripWithoutRealloc) {
  BufferPool pool;
  const Bytes payload = pattern(64, 7);
  Buffer buf = pool.copy(payload, /*headroom=*/32, /*tailroom=*/32);
  EXPECT_EQ(buf.headroom(), 32u);
  EXPECT_EQ(buf.tailroom(), 32u);
  const std::uint8_t* before = buf.data();

  std::uint8_t* hdr = buf.prepend(8);
  for (int i = 0; i < 8; ++i) hdr[i] = static_cast<std::uint8_t>(0xE0 + i);
  std::uint8_t* tail = buf.append(4);
  for (int i = 0; i < 4; ++i) tail[i] = static_cast<std::uint8_t>(0xF0 + i);

  EXPECT_EQ(buf.data() + 8, before);  // still the same block, shifted window
  EXPECT_EQ(buf.size(), 64u + 8u + 4u);
  EXPECT_EQ(buf[0], 0xE0);
  EXPECT_EQ(buf[8], payload[0]);

  buf.pop_front(8);
  buf.pop_back(4);
  EXPECT_TRUE(same_bytes(buf, payload));
  EXPECT_EQ(buf.data(), before);
}

TEST(Buffer, PrependGrowsWhenHeadroomExhausted) {
  BufferPool pool;
  const Bytes payload = pattern(48, 3);
  Buffer buf = pool.copy(payload);  // no headroom reserved
  EXPECT_EQ(buf.headroom(), 0u);
  std::uint8_t* hdr = buf.prepend(16);
  std::fill(hdr, hdr + 16, 0x55);
  ASSERT_EQ(buf.size(), 64u);
  EXPECT_EQ(buf[0], 0x55);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), buf.begin() + 16));
}

TEST(Buffer, AppendGrowsWhenTailroomExhausted) {
  BufferPool pool;
  const Bytes payload = pattern(48, 9);
  Buffer buf = pool.copy(payload);
  // Force past the 64-byte class boundary repeatedly.
  for (int round = 0; round < 4; ++round) {
    std::uint8_t* p = buf.append(100);
    std::fill(p, p + 100, static_cast<std::uint8_t>(round));
  }
  ASSERT_EQ(buf.size(), 48u + 400u);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), buf.begin()));
  EXPECT_EQ(buf[48 + 350], 3);
}

// Regression: assign() through a growth used to write at the block base
// while the window sat at the front slack, leaving the visible bytes
// stale. The contents must be readable through data()/view() afterwards.
TEST(Buffer, AssignLargerThanCapacityIsVisibleThroughWindow) {
  Buffer buf{BytesView(pattern(16, 1))};
  const Bytes big = pattern(300, 42);
  buf.assign(big.begin(), big.end());
  ASSERT_EQ(buf.size(), 300u);
  EXPECT_TRUE(same_bytes(buf, big));
  // And assign of a smaller range reuses the block in place.
  const Bytes small = pattern(10, 200);
  buf.assign(small.begin(), small.end());
  EXPECT_TRUE(same_bytes(buf, small));
}

TEST(Buffer, ResizeFillsAndTruncates) {
  BufferPool pool;
  Buffer buf = pool.make(4);
  std::fill(buf.begin(), buf.end(), 0x11);
  buf.resize(10, 0x22);
  ASSERT_EQ(buf.size(), 10u);
  EXPECT_EQ(buf[3], 0x11);
  EXPECT_EQ(buf[4], 0x22);
  EXPECT_EQ(buf[9], 0x22);
  buf.resize(2);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(Buffer, ConversionsAndEquality) {
  const Bytes src = pattern(40, 11);
  Buffer a{BytesView(src), /*headroom=*/8, /*tailroom=*/8};
  EXPECT_EQ(a.headroom(), 8u);
  EXPECT_EQ(a.tailroom(), 8u);
  Buffer b{src};
  EXPECT_EQ(a, b);  // equality compares windows, not room layout
  const Bytes round_trip = a;  // copying conversion
  EXPECT_EQ(round_trip, src);
  const BytesView v = a;  // free conversion
  EXPECT_EQ(v.data(), a.data());
  b.pop_back(1);
  EXPECT_FALSE(a == b);
}

TEST(Buffer, MoveTransfersBlockCopyDuplicates) {
  BufferPool pool;
  Buffer a = pool.copy(pattern(64, 5), 16, 16);
  const std::uint8_t* block = a.data();
  Buffer moved = std::move(a);
  EXPECT_EQ(moved.data(), block);  // no copy, no new block
  // hipcheck:allow(flow-buffer-lifetime): asserts moved-from state on purpose
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  Buffer copied = moved;
  EXPECT_NE(copied.data(), moved.data());
  EXPECT_EQ(copied, moved);
  EXPECT_EQ(pool.cached_blocks(), 0u);  // both still live
}

}  // namespace
}  // namespace hipcloud::crypto
