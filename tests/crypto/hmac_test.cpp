#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

namespace hipcloud::crypto {
namespace {

// RFC 4231 test cases for HMAC-SHA256.
TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(
      to_hex(hmac_sha256(to_bytes("Jefe"),
                         to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      to_hex(hmac_sha256(
          key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, KeySensitivity) {
  const Bytes msg = to_bytes("message");
  EXPECT_NE(hmac_sha256(to_bytes("key1"), msg),
            hmac_sha256(to_bytes("key2"), msg));
}

TEST(Hkdf, ExpandProducesRequestedLength) {
  const Bytes prk = hkdf_extract(to_bytes("salt"), to_bytes("ikm"));
  for (std::size_t n : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(hkdf_expand(prk, to_bytes("info"), n).size(), n);
  }
}

TEST(Hkdf, ExpandIsPrefixConsistent) {
  // A longer expansion must begin with the shorter one (counter-mode PRF).
  const Bytes prk = hkdf_extract(to_bytes("s"), to_bytes("k"));
  const Bytes long_out = hkdf_expand(prk, to_bytes("x"), 96);
  const Bytes short_out = hkdf_expand(prk, to_bytes("x"), 40);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
}

TEST(Hkdf, InfoSeparatesKeys) {
  const Bytes prk = hkdf_extract(to_bytes("s"), to_bytes("k"));
  EXPECT_NE(hkdf_expand(prk, to_bytes("client"), 32),
            hkdf_expand(prk, to_bytes("server"), 32));
}

}  // namespace
}  // namespace hipcloud::crypto
