#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace hipcloud::crypto {
namespace {

TEST(BigInt, ConstructionAndHex) {
  EXPECT_EQ(BigInt().to_hex(), "0");
  EXPECT_EQ(BigInt(0x1234).to_hex(), "1234");
  EXPECT_EQ(BigInt(0xffffffffffffffffULL).to_hex(), "ffffffffffffffff");
  EXPECT_EQ(BigInt::from_hex("deadbeefcafebabe0123456789").to_hex(),
            "deadbeefcafebabe0123456789");
}

TEST(BigInt, BytesRoundTrip) {
  const Bytes b = from_hex("00ffee0102030405060708090a0b0c0d0e0f");
  const BigInt v = BigInt::from_bytes_be(b);
  // Leading zero byte is dropped on re-encode unless padded.
  EXPECT_EQ(to_hex(v.to_bytes_be()), "ffee0102030405060708090a0b0c0d0e0f");
  EXPECT_EQ(v.to_bytes_be(18).size(), 18u);
  EXPECT_EQ(v.to_bytes_be(18)[0], 0);
}

TEST(BigInt, Comparison) {
  EXPECT_LT(BigInt(5), BigInt(7));
  EXPECT_GT(BigInt::from_hex("100000000"), BigInt(0xffffffff));
  EXPECT_EQ(BigInt(42), BigInt(42));
  EXPECT_LT(BigInt(), BigInt(1));
}

TEST(BigInt, AddSubInverse) {
  const BigInt a = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  const BigInt b = BigInt::from_hex("123456789abcdef0");
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ((a + a) - a, a);
  EXPECT_THROW(b - a, std::underflow_error);
}

TEST(BigInt, AddCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_hex("ffffffffffffffff");
  EXPECT_EQ((a + BigInt(1)).to_hex(), "10000000000000000");
}

TEST(BigInt, MulKnownValues) {
  EXPECT_EQ((BigInt(0xffffffff) * BigInt(0xffffffff)).to_hex(),
            "fffffffe00000001");
  const BigInt a = BigInt::from_hex("123456789abcdef0123456789abcdef0");
  const BigInt one(1);
  EXPECT_EQ(a * one, a);
  EXPECT_TRUE((a * BigInt()).is_zero());
}

TEST(BigInt, ShiftRoundTrip) {
  const BigInt a = BigInt::from_hex("deadbeef12345678");
  for (std::size_t s : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ((a << s) >> s, a) << s;
  }
  EXPECT_EQ((BigInt(1) << 128).bit_length(), 129u);
}

TEST(BigInt, DivmodIdentity) {
  // Property: a == q*b + r with r < b, across sizes and shapes.
  HmacDrbg drbg(1, "divmod");
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_bits(drbg, 256 + (i % 64));
    const BigInt b = BigInt::random_bits(drbg, 32 + (i * 7) % 200);
    const auto [q, r] = a.divmod(b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigInt, DivmodEdgeCases) {
  EXPECT_THROW(BigInt(1).divmod(BigInt()), std::domain_error);
  const BigInt a = BigInt::from_hex("123456789");
  EXPECT_EQ(a / a, BigInt(1));
  EXPECT_TRUE((a % a).is_zero());
  EXPECT_TRUE((a / (a + BigInt(1))).is_zero());
  EXPECT_EQ(a % (a + BigInt(1)), a);
}

TEST(BigInt, DivmodKnuthAddBackCase) {
  // Exercise the rare "add back" branch with a crafted near-boundary case.
  const BigInt u = BigInt::from_hex("7fffffff800000010000000000000000");
  const BigInt v = BigInt::from_hex("800000008000000200000005");
  const auto [q, r] = u.divmod(v);
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(r, v);
}

TEST(BigInt, ModExpSmallKnownValues) {
  EXPECT_EQ(BigInt(4).mod_exp(BigInt(13), BigInt(497)), BigInt(445));
  EXPECT_EQ(BigInt(2).mod_exp(BigInt(10), BigInt(1000)), BigInt(24));
  EXPECT_EQ(BigInt(7).mod_exp(BigInt(), BigInt(13)), BigInt(1));  // x^0
}

TEST(BigInt, ModExpMatchesNaive) {
  HmacDrbg drbg(2, "modexp");
  for (int i = 0; i < 10; ++i) {
    const BigInt base = BigInt::random_bits(drbg, 64);
    const BigInt exp = BigInt::random_bits(drbg, 16);
    BigInt mod = BigInt::random_bits(drbg, 64);
    mod.set_bit(0);  // odd -> Montgomery path
    // Naive repeated multiplication.
    BigInt naive(1);
    const std::uint64_t e =
        std::stoull(exp.to_hex(), nullptr, 16);
    for (std::uint64_t j = 0; j < e % 1000; ++j) {
      naive = (naive * base) % mod;
    }
    const BigInt expected = naive;
    EXPECT_EQ(base.mod_exp(BigInt(e % 1000), mod), expected);
  }
}

TEST(BigInt, ModExpEvenModulus) {
  EXPECT_EQ(BigInt(3).mod_exp(BigInt(5), BigInt(100)), BigInt(43));
}

TEST(BigInt, ModInverse) {
  const BigInt m = BigInt::from_hex("fffffffb");  // prime
  HmacDrbg drbg(3, "inverse");
  for (int i = 0; i < 20; ++i) {
    const BigInt a = BigInt(1) + BigInt::random_below(drbg, m - BigInt(1));
    const BigInt inv = a.mod_inverse(m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
  EXPECT_THROW(BigInt(4).mod_inverse(BigInt(8)), std::domain_error);
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)), BigInt(12));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
}

TEST(BigInt, BitOps) {
  BigInt v;
  v.set_bit(100);
  EXPECT_TRUE(v.bit(100));
  EXPECT_FALSE(v.bit(99));
  EXPECT_EQ(v.bit_length(), 101u);
  EXPECT_EQ(v, BigInt(1) << 100);
}

TEST(BigInt, RandomBelowIsInRange) {
  HmacDrbg drbg(4, "below");
  const BigInt bound = BigInt::from_hex("10000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::random_below(drbg, bound), bound);
  }
}

TEST(BigInt, RandomBitsHasExactWidth) {
  HmacDrbg drbg(5, "bits");
  for (std::size_t bits : {8u, 33u, 64u, 127u, 256u}) {
    EXPECT_EQ(BigInt::random_bits(drbg, bits).bit_length(), bits);
  }
}

TEST(BigInt, PrimalityKnownPrimesAndComposites) {
  HmacDrbg drbg(6, "prime");
  EXPECT_TRUE(BigInt::is_probable_prime(BigInt(2), drbg));
  EXPECT_TRUE(BigInt::is_probable_prime(BigInt(65537), drbg));
  // 2^61 - 1 is a Mersenne prime.
  EXPECT_TRUE(
      BigInt::is_probable_prime(BigInt::from_hex("1fffffffffffffff"), drbg));
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt(1), drbg));
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt(561), drbg));   // Carmichael
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt(65536), drbg));
  // 2^67-1 = 193707721 * 761838257287 (composite Mersenne).
  EXPECT_FALSE(
      BigInt::is_probable_prime(BigInt::from_hex("7ffffffffffffffff"), drbg));
}

TEST(BigInt, GeneratePrimeHasRequestedBits) {
  HmacDrbg drbg(7, "genprime");
  const BigInt p = BigInt::generate_prime(drbg, 128);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(BigInt::is_probable_prime(p, drbg));
}

TEST(BigInt, FermatLittleTheoremProperty) {
  // a^(p-1) == 1 mod p for prime p and a not divisible by p.
  const BigInt p = BigInt::from_hex("ffffffffffffffc5");  // 2^64-59, prime
  HmacDrbg drbg(8, "fermat");
  for (int i = 0; i < 10; ++i) {
    const BigInt a = BigInt(2) + BigInt::random_below(drbg, p - BigInt(2));
    EXPECT_EQ(a.mod_exp(p - BigInt(1), p), BigInt(1));
  }
}

}  // namespace
}  // namespace hipcloud::crypto
