#include "crypto/ec_p256.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace hipcloud::crypto::p256 {
namespace {

TEST(P256, GeneratorOnCurve) {
  EXPECT_TRUE(on_curve(generator()));
  EXPECT_FALSE(generator().infinity);
}

TEST(P256, OrderTimesGeneratorIsIdentity) {
  EXPECT_TRUE(multiply(generator(), order()).infinity);
}

TEST(P256, KnownScalarMultiple) {
  // k = 2: published doubling of the P-256 base point.
  const Point p2 = multiply(generator(), BigInt(2));
  EXPECT_EQ(p2.x.to_hex(),
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_EQ(p2.y.to_hex(),
            "7775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1");
}

TEST(P256, AdditionCommutesWithScalarMult) {
  const Point p2 = multiply(generator(), BigInt(2));
  const Point p3a = add(p2, generator());
  const Point p3b = multiply(generator(), BigInt(3));
  EXPECT_EQ(p3a, p3b);
}

TEST(P256, AddIdentityLaws) {
  const Point inf;
  EXPECT_EQ(add(generator(), inf), generator());
  EXPECT_EQ(add(inf, generator()), generator());
  EXPECT_TRUE(add(inf, inf).infinity);
}

TEST(P256, AddInverseGivesIdentity) {
  Point neg = generator();
  neg.y = field_prime() - neg.y;
  EXPECT_TRUE(on_curve(neg));
  EXPECT_TRUE(add(generator(), neg).infinity);
}

TEST(P256, PointEncodingRoundTrip) {
  const Point p = multiply(generator(), BigInt(12345));
  const Bytes enc = encode_point(p);
  EXPECT_EQ(enc.size(), 65u);
  EXPECT_EQ(enc[0], 0x04);
  EXPECT_EQ(decode_point(enc), p);
  EXPECT_TRUE(decode_point(encode_point(Point{})).infinity);
}

TEST(P256, DecodeRejectsInvalid) {
  EXPECT_THROW(decode_point(Bytes(64, 0x01)), std::runtime_error);
  Bytes off_curve(65, 0x01);
  off_curve[0] = 0x04;
  EXPECT_THROW(decode_point(off_curve), std::runtime_error);
}

TEST(P256, EcdhAgreement) {
  HmacDrbg da(1, "alice"), db(2, "bob");
  const KeyPair alice = generate(da);
  const KeyPair bob = generate(db);
  EXPECT_EQ(ecdh(alice.private_scalar, bob.public_point),
            ecdh(bob.private_scalar, alice.public_point));
}

TEST(P256, EcdhRejectsIdentityPeer) {
  HmacDrbg d(3, "x");
  const KeyPair kp = generate(d);
  EXPECT_THROW(ecdh(kp.private_scalar, Point{}), std::runtime_error);
}

TEST(P256, EcdsaSignVerifyRoundTrip) {
  HmacDrbg d(4, "sig");
  const KeyPair kp = generate(d);
  const Bytes msg = to_bytes("elliptic curve host identity");
  const Signature sig = ecdsa_sign(kp.private_scalar, d, msg);
  EXPECT_TRUE(ecdsa_verify(kp.public_point, msg, sig));
}

TEST(P256, EcdsaRejectsWrongMessage) {
  HmacDrbg d(5, "sig2");
  const KeyPair kp = generate(d);
  const Signature sig = ecdsa_sign(kp.private_scalar, d, to_bytes("A"));
  EXPECT_FALSE(ecdsa_verify(kp.public_point, to_bytes("B"), sig));
}

TEST(P256, EcdsaRejectsTamperedSignature) {
  HmacDrbg d(6, "sig3");
  const KeyPair kp = generate(d);
  const Bytes msg = to_bytes("m");
  Signature sig = ecdsa_sign(kp.private_scalar, d, msg);
  sig.s = (sig.s + BigInt(1)) % order();
  EXPECT_FALSE(ecdsa_verify(kp.public_point, msg, sig));
}

TEST(P256, EcdsaRejectsZeroComponents) {
  HmacDrbg d(7, "sig4");
  const KeyPair kp = generate(d);
  EXPECT_FALSE(ecdsa_verify(kp.public_point, to_bytes("m"),
                            Signature{BigInt(), BigInt(1)}));
  EXPECT_FALSE(ecdsa_verify(kp.public_point, to_bytes("m"),
                            Signature{BigInt(1), BigInt()}));
}

TEST(P256, EcdsaRejectsWrongKey) {
  HmacDrbg d1(8, "k1"), d2(9, "k2");
  const KeyPair a = generate(d1);
  const KeyPair b = generate(d2);
  const Bytes msg = to_bytes("m");
  const Signature sig = ecdsa_sign(a.private_scalar, d1, msg);
  EXPECT_FALSE(ecdsa_verify(b.public_point, msg, sig));
}

TEST(P256, SignatureEncodeDecodeRoundTrip) {
  HmacDrbg d(10, "enc");
  const KeyPair kp = generate(d);
  const Signature sig = ecdsa_sign(kp.private_scalar, d, to_bytes("m"));
  const Signature back = Signature::decode(sig.encode());
  EXPECT_EQ(back.r, sig.r);
  EXPECT_EQ(back.s, sig.s);
  EXPECT_THROW(Signature::decode(Bytes(63, 0)), std::runtime_error);
}

TEST(P256, ScalarMultDistributes) {
  // (a+b)G == aG + bG — core group property exercised through the
  // Jacobian path.
  HmacDrbg d(11, "dist");
  const BigInt a = BigInt::random_below(d, order());
  const BigInt b = BigInt::random_below(d, order());
  const Point lhs = multiply(generator(), (a + b) % order());
  const Point rhs = add(multiply(generator(), a), multiply(generator(), b));
  EXPECT_EQ(lhs, rhs);
}

}  // namespace
}  // namespace hipcloud::crypto::p256
